#include "vm/address_space.hh"

#include <algorithm>

#include "audit/auditor.hh"
#include "common/log.hh"
#include "mem/interval_set.hh"
#include "mem/node.hh"
#include "policy/engine.hh"
#include "trace/tracer.hh"

namespace upm::vm {

namespace {

/** Simulated mmap base; arbitrary but away from zero. */
constexpr VirtAddr kMmapBase = 0x7f00'0000'0000ull;
/** Guard gap between VMAs (catches overruns in the backing store). */
constexpr std::uint64_t kGuardGap = 2 * mem::kPageSize;
/**
 * VMA base alignment. HIP aligns device allocations to 2 MiB so the
 * driver can form large page-table fragments; a misaligned virtual
 * base would cap every fragment regardless of physical contiguity.
 */
constexpr std::uint64_t kVmaAlign = 2 * MiB;
/**
 * End of the simulated VA window. 1 TiB of simulated span is orders
 * of magnitude above anything the benches map, so hitting this cap
 * means the caller is asking for the impossible -- which must be a
 * recoverable ENOMEM, not a crash, just like frame exhaustion.
 */
constexpr VirtAddr kVaEnd = kMmapBase + 1 * TiB;
/**
 * Socket-interleave granularity: 2 MiB chunks, matching the VMA / GPU
 * fragment alignment so interleaving never splits a large fragment.
 */
constexpr std::uint64_t kSocketChunkPages = (2 * MiB) / mem::kPageSize;

} // namespace

const char *
socketPolicyName(SocketPolicy policy)
{
    switch (policy) {
      case SocketPolicy::Default: return "default";
      case SocketPolicy::Home: return "home";
      case SocketPolicy::FirstTouch: return "first-touch";
      case SocketPolicy::Interleave: return "interleave";
      case SocketPolicy::ReplicateRO: return "replicate-ro";
    }
    return "?";
}

AddressSpace::AddressSpace(mem::FrameAllocator &frame_allocator,
                           mem::BackingStore &backing_store)
    : frameAlloc(frame_allocator), backingStore(backing_store),
      hmm(sysTable, gpuPt), nextBase(kMmapBase), vaEnd(kVaEnd)
{
}

void
AddressSpace::setVaWindow(VirtAddr base, VirtAddr end)
{
    if (!vmas.empty())
        panic("setVaWindow after a VMA was mapped");
    if (base == 0 || end <= base)
        panic("setVaWindow: bad window [0x%llx, 0x%llx)",
              static_cast<unsigned long long>(base),
              static_cast<unsigned long long>(end));
    nextBase = base;
    vaEnd = end;
}

std::uint64_t
AddressSpace::demoteReplicas()
{
    std::uint64_t pages = 0;
    for (auto &[base, vma] : vmas) {
        for (const auto &replica : vma.replicaRanges) {
            if (!freeRouted(replica))
                panic("demoteReplicas freed a replica frame the "
                      "allocator says is not allocated");
            pages += replica.count;
        }
        vma.replicaRanges.clear();
        if (vma.policy.socketPolicy == SocketPolicy::ReplicateRO)
            vma.policy.socketPolicy = SocketPolicy::Home;
    }
    return pages;
}

MmapResult
AddressSpace::tryMmapAnon(std::uint64_t size, const VmaPolicy &policy,
                          std::string name)
{
    if (size == 0)
        return {Status::InvalidValue, 0};
    std::uint64_t span = roundUp(size, mem::kPageSize);
    VirtAddr base = roundUp(nextBase, kVmaAlign);
    // VA-window exhaustion before any state changes: a huge request
    // must leave the space exactly as it found it.
    if (base >= vaEnd || span > vaEnd - base)
        return {Status::OutOfMemory, 0};
    // The bump allocator never reuses VA, so an overlap can only mean
    // corrupted internal state or a hand-crafted request; reject it
    // rather than silently aliasing someone else's backing.
    auto next_vma = vmas.lower_bound(base);
    if (next_vma != vmas.end() && next_vma->first < base + span)
        return {Status::InvalidValue, 0};
    if (next_vma != vmas.begin()) {
        const Vma &prev = std::prev(next_vma)->second;
        if (prev.base + prev.size > base)
            return {Status::InvalidValue, 0};
    }
    nextBase = base + span + kGuardGap;

    Vma vma;
    vma.base = base;
    vma.size = span;
    vma.policy = policy;
    if (vma.policy.socketPolicy == SocketPolicy::Default) {
        vma.policy.socketPolicy = defSocketPolicy;
        vma.policy.homeSocket = defHomeSocket;
    }
    vma.nextSocket = vma.policy.homeSocket;
    vma.name = std::move(name);
    vmas.emplace(base, vma);
    backingStore.attach(base, span);
    if (tr != nullptr) {
        std::uint64_t bits =
            (policy.cpuAccess ? 1u : 0u) | (policy.gpuMapped ? 2u : 0u) |
            (policy.onDemand ? 4u : 0u) | (policy.pinned ? 8u : 0u) |
            (policy.uncachedGpu ? 16u : 0u);
        tr->emit(trace::EventKind::VmaMap, base, span,
                 static_cast<std::uint64_t>(policy.placement), bits, 0,
                 0.0, vmas.at(base).name);
    }
    return {Status::Success, base};
}

VirtAddr
AddressSpace::mmapAnon(std::uint64_t size, const VmaPolicy &policy,
                       std::string name)
{
    auto result = tryMmapAnon(size, policy, std::move(name));
    if (!result) {
        throw StatusError(result.status,
                          strprintf("mmap of %llu bytes",
                                    static_cast<unsigned long long>(size)));
    }
    return result.base;
}

Status
AddressSpace::munmap(VirtAddr base)
{
    auto it = vmas.find(base);
    if (it == vmas.end())
        return Status::NotFound;
    const Vma &vma = it->second;

    hmm.invalidateRange(vma.beginVpn(), vma.endVpn());
    // munmap *knows* every mapped frame is allocated (the page table
    // said so); a failed free here is free-list/busy-bit divergence,
    // an internal invariant break, and stays a panic.
    if (aud != nullptr) {
        // Free each sub-run as it is cut so UPMSan sees the same
        // per-frame event stream, in vpn order, as ever.
        sysTable.removeRange(
            vma.beginVpn(), vma.endVpn(), [&](const PteRun &cut) {
                bool ok = true;
                if (cut.scatter == nullptr) {
                    ok = freeRouted({cut.frame, cut.len});
                } else {
                    for (std::uint64_t i = 0; i < cut.len; ++i)
                        ok = freeRouted({cut.scatter[i], 1}) && ok;
                }
                if (!ok)
                    panic("munmap freed a frame the allocator says is "
                          "not allocated");
            });
    } else {
        // Batch: accumulate the freed frames into merged intervals
        // first, then hand the buddy a few big ranges. Eager buddy
        // merging makes the final free-list state a pure function of
        // the free frame set, so this is equivalent to per-run frees.
        mem::IntervalSet freed;
        sysTable.removeRange(
            vma.beginVpn(), vma.endVpn(), [&](const PteRun &cut) {
                if (cut.scatter == nullptr) {
                    freed.insertRange(cut.frame, cut.len);
                } else {
                    for (std::uint64_t i = 0; i < cut.len; ++i)
                        freed.insert(cut.scatter[i]);
                }
            });
        freed.forEach([&](FrameId begin_frame, FrameId end_frame) {
            if (!freeRouted({begin_frame, end_frame - begin_frame})) {
                panic("munmap freed a frame the allocator says is not "
                      "allocated");
            }
        });
    }
    for (const auto &replica : vma.replicaRanges) {
        if (!freeRouted(replica))
            panic("munmap freed a replica frame the allocator says is "
                  "not allocated");
    }
    if (tr != nullptr) {
        tr->emit(trace::EventKind::VmaUnmap, vma.base, vma.size,
                 vma.beginVpn(), vma.endVpn());
    }
    backingStore.detach(base);
    vmas.erase(it);
    return Status::Success;
}

void
AddressSpace::munmapChecked(VirtAddr base)
{
    Status status = munmap(base);
    if (status != Status::Success) {
        panic("munmapChecked(0x%llx): %s",
              static_cast<unsigned long long>(base), statusName(status));
    }
}

const Vma *
AddressSpace::findVma(VirtAddr addr) const
{
    auto it = vmas.upper_bound(addr);
    if (it == vmas.begin())
        return nullptr;
    --it;
    if (!it->second.contains(addr))
        return nullptr;
    return &it->second;
}

Vma *
AddressSpace::findVmaMutable(VirtAddr addr)
{
    return const_cast<Vma *>(
        static_cast<const AddressSpace *>(this)->findVma(addr));
}

PteFlags
AddressSpace::flagsFor(const Vma &vma) const
{
    PteFlags flags;
    flags.pinned = vma.policy.pinned;
    flags.uncached = vma.policy.uncachedGpu;
    return flags;
}

void
AddressSpace::emitListExtents(Vpn vpn, const FrameId *frames,
                              std::uint64_t n)
{
    if (tr == nullptr)
        return;
    std::uint64_t i = 0;
    while (i < n) {
        std::uint64_t j = i + 1;
        while (j < n && frames[j] == frames[j - 1] + 1)
            ++j;
        tr->emit(trace::EventKind::ExtentMap, vpn + i, j - i,
                 frames[i], 1);
        i = j;
    }
}

void
AddressSpace::mapFrames(const Vma &vma, Vpn vpn,
                        std::vector<FrameId> frame_list)
{
    std::uint64_t n = frame_list.size();
    emitListExtents(vpn, frame_list.data(), n);
    sysTable.insertFrames(vpn, std::move(frame_list), flagsFor(vma));
    if (vma.policy.gpuMapped)
        hmm.mirrorRange(vpn, vpn + n);
}

void
AddressSpace::mapRanges(const Vma &vma, Vpn vpn,
                        const std::vector<mem::FrameRange> &ranges)
{
    PteFlags flags = flagsFor(vma);
    Vpn cursor = vpn;
    for (const auto &range : ranges) {
        if (tr != nullptr) {
            tr->emit(trace::EventKind::ExtentMap, cursor, range.count,
                     range.base, 0);
        }
        sysTable.insertRange(cursor, range.count, range.base, flags);
        cursor += range.count;
    }
    if (vma.policy.gpuMapped)
        hmm.mirrorRange(vpn, cursor);
}

PopulateResult
AddressSpace::tryPopulateRange(VirtAddr base, std::uint64_t size)
{
    Vma *vma = findVmaMutable(base);
    if (vma == nullptr)
        return {Status::NotFound, 0};
    Vpn first = vpnOf(base);
    Vpn last = vpnOf(base + size + mem::kPageSize - 1);
    last = std::min(last, vma->endVpn());

    // Collect the holes up front (populating mutates the table while a
    // gap walk would be iterating), then fill them contiguously.
    std::vector<std::pair<Vpn, Vpn>> holes;
    sysTable.forEachGap(first, last, [&](Vpn gap_begin, Vpn gap_end) {
        holes.emplace_back(gap_begin, gap_end);
    });
    std::uint64_t populated = 0;
    bool interleave_sockets =
        node != nullptr && node->numSockets() > 1 &&
        vma->policy.socketPolicy == SocketPolicy::Interleave;
    for (const auto &[hole_start, hole_end] : holes) {
        std::uint64_t n = hole_end - hole_start;
        // OOM mid-walk leaves earlier holes mapped; callers unwind by
        // unmapping the whole VMA, which reclaims them.
        if (interleave_sockets) {
            // Chunked round-robin across sockets, 2 MiB at a time.
            Vpn cursor = hole_start;
            std::uint64_t remaining = n;
            while (remaining > 0) {
                std::uint64_t take =
                    std::min<std::uint64_t>(remaining, kSocketChunkPages);
                if (!allocAndMap(*vma, sourceFor(*vma), cursor, take))
                    return {Status::OutOfMemory, populated};
                cursor += take;
                remaining -= take;
                populated += take;
            }
        } else {
            if (!allocAndMap(*vma, sourceFor(*vma), hole_start, n))
                return {Status::OutOfMemory, populated};
            populated += n;
        }
    }
    if (populated > 0 && node != nullptr && node->numSockets() > 1 &&
        vma->policy.socketPolicy == SocketPolicy::ReplicateRO) {
        if (!replicate(*vma, populated))
            return {Status::OutOfMemory, populated};
    }
    if (tr != nullptr)
        tr->emit(trace::EventKind::Populate, base, populated);
    return {Status::Success, populated};
}

mem::FrameAllocator &
AddressSpace::sourceFor(const Vma &vma)
{
    if (node == nullptr)
        return frameAlloc;
    unsigned sockets = node->numSockets();
    if (pol != nullptr && pol->overridesPlacement()) {
        // Engine override: the policy answers "which socket?", the
        // VMA keeps the rotation cursor (const_cast: placement
        // bookkeeping, not logical VMA state -- same as Interleave
        // below).
        Vma &mut = const_cast<Vma &>(vma);
        policy::PlaceRequest req{curSocket, vma.policy.homeSocket,
                                 sockets, mut.nextSocket};
        policy::PlaceDecision decision =
            pol->choosePlacement(polSpace, vma.beginVpn(), req);
        mut.nextSocket = decision.nextCursor;
        return node->shard(decision.socket % sockets);
    }
    switch (vma.policy.socketPolicy) {
      case SocketPolicy::FirstTouch:
        return node->shard(curSocket % sockets);
      case SocketPolicy::Interleave: {
        // Rotating cursor: populate chunks and fault batches take the
        // next socket in turn (const_cast: the cursor is placement
        // bookkeeping, not logical VMA state).
        Vma &mut = const_cast<Vma &>(vma);
        unsigned s = mut.nextSocket % sockets;
        mut.nextSocket = (s + 1) % sockets;
        return node->shard(s);
      }
      case SocketPolicy::Home:
      case SocketPolicy::ReplicateRO:
      default:
        return node->shard(vma.policy.homeSocket % sockets);
    }
}

bool
AddressSpace::allocAndMap(Vma &vma, mem::FrameAllocator &src, Vpn vpn,
                          std::uint64_t n)
{
    switch (vma.policy.placement) {
      case Placement::Contiguous: {
        auto ranges = src.allocRun(n);
        if (!ranges)
            return false;
        mapRanges(vma, vpn, *ranges);
        break;
      }
      case Placement::Interleaved: {
        std::vector<FrameId> frame_list;
        if (!src.allocInterleaved(n, frame_list))
            return false;
        mapFrames(vma, vpn, std::move(frame_list));
        break;
      }
      case Placement::FaultBatch: {
        std::vector<mem::FrameRange> ranges;
        if (!src.allocBatch(n, ranges))
            return false;
        mapRanges(vma, vpn, ranges);
        break;
      }
      case Placement::Scattered:
      default: {
        std::vector<FrameId> frame_list;
        if (!src.allocScattered(n, frame_list))
            return false;
        mapFrames(vma, vpn, std::move(frame_list));
        break;
      }
    }
    if (vma.policy.placement == Placement::Scattered)
        vma.pagesScattered += n;
    else
        vma.pagesPlaced += n;
    if (node != nullptr && tr != nullptr) {
        tr->emitAt(src.socket(), trace::EventKind::PagePlace, vpn, n,
                   src.socket(),
                   static_cast<std::uint64_t>(vma.policy.socketPolicy));
    }
    return true;
}

bool
AddressSpace::freeRouted(const mem::FrameRange &range)
{
    return node != nullptr ? node->freeRange(range)
                           : frameAlloc.freeRange(range);
}

bool
AddressSpace::replicate(Vma &vma, std::uint64_t n)
{
    unsigned sockets = node->numSockets();
    unsigned home = vma.policy.homeSocket % sockets;
    for (unsigned s = 0; s < sockets; ++s) {
        if (s == home)
            continue;
        auto ranges = node->shard(s).allocRun(n);
        if (!ranges)
            return false;
        for (const auto &range : *ranges) {
            vma.replicaRanges.push_back(range);
            if (tr != nullptr) {
                tr->emitAt(s, trace::EventKind::PagePlace,
                           vma.beginVpn(), range.count, s,
                           static_cast<std::uint64_t>(
                               SocketPolicy::ReplicateRO));
            }
        }
    }
    return true;
}

std::uint64_t
AddressSpace::populateRange(VirtAddr base, std::uint64_t size)
{
    auto result = tryPopulateRange(base, size);
    if (!result) {
        const Vma *vma = findVma(base);
        throw StatusError(result.status,
                          strprintf("populating '%s'",
                                    vma != nullptr ? vma->name.c_str()
                                                   : "<unmapped>"));
    }
    return result.pages;
}

Status
AddressSpace::pinAndMapGpu(VirtAddr base)
{
    auto it = vmas.find(base);
    if (it == vmas.end())
        return Status::NotFound;
    Vma &vma = it->second;

    // pin_user_pages drives missing pages through the ordinary CPU
    // fault path, so placement stays whatever the VMA had.
    auto populated = tryPopulateRange(vma.base, vma.size);
    if (!populated)
        return populated.status;
    vma.policy.pinned = true;
    vma.policy.gpuMapped = true;
    vma.policy.onDemand = false;

    sysTable.setFlagsRange(vma.beginVpn(), vma.endVpn(), flagsFor(vma));
    hmm.mirrorRange(vma.beginVpn(), vma.endVpn());
    return Status::Success;
}

void
AddressSpace::resolveCpuFault(Vpn vpn)
{
    resolveCpuFaultRange(vpn, vpn + 1);
}

PopulateResult
AddressSpace::tryResolveCpuFaultRange(Vpn first, Vpn last)
{
    Vma *vma = findVmaMutable(addrOf(first));
    if (vma == nullptr)
        return {Status::AccessFault, 0};
    if (!vma->policy.cpuAccess)
        return {Status::AccessFault, 0};
    last = std::min(last, vma->endVpn());

    std::vector<std::pair<Vpn, Vpn>> holes;
    std::uint64_t missing = 0;
    sysTable.forEachGap(first, last, [&](Vpn gap_begin, Vpn gap_end) {
        holes.emplace_back(gap_begin, gap_end);
        missing += gap_end - gap_begin;
    });
    if (missing == 0)
        return {Status::Success, 0};  // benign race: already resolved

    // One batched pool grab: the on-demand pool hands out the same
    // frame sequence as `missing` single-frame grabs would.
    mem::FrameAllocator &src = sourceFor(*vma);
    std::vector<FrameId> frame_list;
    frame_list.reserve(missing);
    if (!src.allocScattered(missing, frame_list))
        return {Status::OutOfMemory, 0};
    PteFlags flags = flagsFor(*vma);
    std::size_t next = 0;
    for (const auto &[gap_begin, gap_end] : holes) {
        emitListExtents(gap_begin, frame_list.data() + next,
                        gap_end - gap_begin);
        sysTable.insertFrames(gap_begin, frame_list.data() + next,
                              gap_end - gap_begin, flags);
        next += gap_end - gap_begin;
    }
    vma->pagesScattered += missing;
    cpuFaultCount += missing;
    if (node != nullptr && tr != nullptr) {
        tr->emitAt(src.socket(), trace::EventKind::PagePlace, first,
                   missing, src.socket(),
                   static_cast<std::uint64_t>(
                       vma->policy.socketPolicy));
    }
    if (tr != nullptr)
        tr->emitAt(curSocket, trace::EventKind::CpuFault, first, missing);
    if (pol != nullptr) {
        pol->advanceTick();
        pol->noteAccessRange(polSpace, first, missing);
    }
    return {Status::Success, missing};
}

std::uint64_t
AddressSpace::resolveCpuFaultRange(Vpn first, Vpn last)
{
    auto result = tryResolveCpuFaultRange(first, last);
    if (!result) {
        throw StatusError(
            result.status,
            strprintf("CPU fault on vpn 0x%llx",
                      static_cast<unsigned long long>(first)));
    }
    return result.pages;
}

GpuFaultKind
AddressSpace::resolveGpuFault(Vpn first, std::uint64_t count)
{
    Vma *vma = findVmaMutable(addrOf(first));
    if (vma == nullptr)
        return GpuFaultKind::Violation;
    Vpn last = std::min<Vpn>(first + count, vma->endVpn());

    // A GPU-mapped region never faults once populated; reaching here
    // with the region fully present means no fault at all.
    std::uint64_t span = last > first ? last - first : 0;
    bool any_missing_gpu = gpuPt.presentInRange(first, last) < span;
    bool any_missing_sys = sysTable.presentInRange(first, last) < span;
    auto emit_fault = [&](GpuFaultKind kind) {
        if (tr != nullptr) {
            tr->emitAt(curSocket, trace::EventKind::GpuFault, first,
                       span, static_cast<std::uint64_t>(kind));
        }
        return kind;
    };
    if (!any_missing_gpu) {
        // An XNACK replay arriving for a fully mapped range means the
        // retry logic re-sent a fault the handler already resolved --
        // wasted replay bandwidth on real hardware, a logic bug here.
        if (aud != nullptr && aud->config().checkMirror) {
            aud->record(audit::ViolationKind::XnackReplayMapped,
                        addrOf(first),
                        strprintf("GPU fault replay on [vpn 0x%llx, "
                                  "+%llu) but every page is already "
                                  "GPU-mapped",
                                  static_cast<unsigned long long>(first),
                                  static_cast<unsigned long long>(
                                      last - first)));
        }
        return emit_fault(GpuFaultKind::None);
    }

    // Retry-able GPU page faults require XNACK unless the VMA was
    // GPU-mapped up-front (in which case there is nothing to resolve
    // on demand and a missing page is a real violation).
    if (!xnack)
        return emit_fault(GpuFaultKind::Violation);

    if (!any_missing_sys) {
        // Minor: physical pages exist, only the GPU mapping is absent.
        gpuMinorCount += hmm.mirrorRange(first, last);
        return emit_fault(GpuFaultKind::Minor);
    }

    // Major: thousands of wavefronts fault in arbitrary virtual order,
    // and the handler gives each fault the next free frame. The result
    // is a stack-balanced but virtually-random frame assignment: big
    // fragments never form, exactly as the paper's TLB-miss counts
    // show for GPU-initialized on-demand memory.
    std::vector<Vpn> holes;
    sysTable.forEachGap(first, last, [&](Vpn gap_begin, Vpn gap_end) {
        for (Vpn vpn = gap_begin; vpn < gap_end; ++vpn)
            holes.push_back(vpn);
    });
    mem::FrameAllocator &src = sourceFor(*vma);
    std::vector<mem::FrameRange> ranges;
    if (!src.allocBatch(holes.size(), ranges)) {
        // Nothing has been inserted yet, so failing here is clean:
        // the tables are exactly as they were before the fault.
        return emit_fault(GpuFaultKind::OutOfMemory);
    }
    std::vector<FrameId> frame_list;
    frame_list.reserve(holes.size());
    for (const auto &range : ranges) {
        for (std::uint64_t i = 0; i < range.count; ++i)
            frame_list.push_back(range.base + i);
    }
    // Fisher-Yates over the virtual arrival order.
    for (std::size_t i = holes.size(); i > 1; --i) {
        std::size_t j = static_cast<std::size_t>(faultRng.nextBelow(i));
        std::swap(holes[i - 1], holes[j]);
    }
    PteFlags flags = flagsFor(*vma);
    std::size_t run_end = 0; // exclusive end of the last emitted run
    for (std::size_t i = 0; i < holes.size(); ++i) {
        // The shuffled arrival order leaves little (vpn, frame)
        // adjacency; coalesce what little there is, emitting each run
        // exactly once (replay relies on non-overlapping extents).
        if (tr != nullptr && i >= run_end) {
            std::size_t j = i;
            while (j + 1 < holes.size() &&
                   holes[j + 1] == holes[j] + 1 &&
                   frame_list[j + 1] == frame_list[j] + 1) {
                ++j;
            }
            tr->emit(trace::EventKind::ExtentMap, holes[i], j - i + 1,
                     frame_list[i], 1);
            run_end = j + 1;
        }
        sysTable.insert(holes[i], frame_list[i], flags);
    }
    hmm.mirrorRange(first, last);
    vma->pagesPlaced += holes.size();
    gpuMajorCount += holes.size();
    if (pol != nullptr) {
        pol->advanceTick();
        pol->noteAccessRange(polSpace, first, last - first);
    }
    if (node != nullptr && tr != nullptr) {
        tr->emitAt(src.socket(), trace::EventKind::PagePlace, first,
                   holes.size(), src.socket(),
                   static_cast<std::uint64_t>(
                       vma->policy.socketPolicy));
    }
    return emit_fault(GpuFaultKind::Major);
}

bool
AddressSpace::cpuPresent(VirtAddr addr) const
{
    return sysTable.present(vpnOf(addr));
}

bool
AddressSpace::gpuPresent(VirtAddr addr) const
{
    return gpuPt.present(vpnOf(addr));
}

mem::PhysAddr
AddressSpace::translate(VirtAddr addr) const
{
    auto pte = sysTable.lookup(vpnOf(addr));
    if (!pte)
        panic("translate of unmapped address 0x%llx",
              static_cast<unsigned long long>(addr));
    return (pte->frame << mem::kPageShift) | (addr & (mem::kPageSize - 1));
}

std::vector<FrameId>
AddressSpace::framesOf(VirtAddr base, std::uint64_t size) const
{
    std::vector<FrameId> out;
    sysTable.forEachRun(vpnOf(base),
                        vpnOf(base + size + mem::kPageSize - 1),
                        [&](const PteRun &run) {
                            if (run.scatter != nullptr) {
                                out.insert(out.end(), run.scatter,
                                           run.scatter + run.len);
                                return;
                            }
                            for (std::uint64_t i = 0; i < run.len; ++i)
                                out.push_back(run.frame + i);
                        });
    return out;
}

std::vector<std::uint64_t>
AddressSpace::stackLoadOf(VirtAddr base, std::uint64_t size) const
{
    return frameAlloc.geometry().stackLoad(framesOf(base, size));
}

void
AddressSpace::setDefaultSocketPolicy(SocketPolicy policy, unsigned home)
{
    // Default-to-Default would recurse at mmap time; resolve it here.
    defSocketPolicy =
        policy == SocketPolicy::Default ? SocketPolicy::Home : policy;
    defHomeSocket = home;
}

void
AddressSpace::setAuditor(audit::Auditor *auditor)
{
    aud = auditor;
    hmm.setAuditor(auditor);
}

void
AddressSpace::setTracer(trace::Tracer *tracer)
{
    tr = tracer;
    hmm.setTracer(tracer);
}

void
AddressSpace::setPolicyEngine(policy::PolicyEngine *engine,
                              std::uint64_t space_id)
{
    pol = engine;
    polSpace = space_id;
}

std::uint64_t
AddressSpace::auditMirrorConsistency(audit::Auditor &auditor) const
{
    if (!auditor.config().checkMirror)
        return 0;
    std::uint64_t violations = 0;
    gpuPt.forRange(0, ~0ull, [&](Vpn vpn, const GpuPte &gpu_pte) {
        auto sys_pte = sysTable.lookup(vpn);
        if (!sys_pte) {
            ++violations;
            auditor.record(
                audit::ViolationKind::StaleMirror, addrOf(vpn),
                strprintf("GPU PTE for vpn 0x%llx (frame %llu) has no "
                          "system PTE: the MMU notifier missed an "
                          "invalidation",
                          static_cast<unsigned long long>(vpn),
                          static_cast<unsigned long long>(gpu_pte.frame)));
        } else if (sys_pte->frame != gpu_pte.frame) {
            ++violations;
            auditor.record(
                audit::ViolationKind::MirrorDivergence, addrOf(vpn),
                strprintf("vpn 0x%llx: system PTE maps frame %llu but "
                          "GPU PTE maps frame %llu",
                          static_cast<unsigned long long>(vpn),
                          static_cast<unsigned long long>(sys_pte->frame),
                          static_cast<unsigned long long>(gpu_pte.frame)));
        }
    });
    return violations;
}

} // namespace upm::vm

/**
 * @file
 * HMM-style mirroring between the system and GPU page tables.
 *
 * Unlike Grace Hopper, the MI300A GPU cannot walk the system page
 * table; PTEs must be *propagated* into the GPU page table, and the
 * Linux HMM subsystem keeps the two in sync (paper Section 2.3). The
 * mirror is the mechanism behind GPU *minor* faults: the page is
 * already physically present (system PTE exists) and only the GPU-side
 * mapping is missing.
 */

#ifndef UPM_VM_HMM_HH
#define UPM_VM_HMM_HH

#include <cstdint>

#include "vm/gpu_page_table.hh"
#include "vm/page_table.hh"

namespace upm::audit {
class Auditor;
}

namespace upm::trace {
class Tracer;
}

namespace upm::vm {

/**
 * Propagates PTEs from a SystemPageTable into a GpuPageTable and
 * handles invalidation, recomputing fragments over touched windows.
 */
class HmmMirror
{
  public:
    HmmMirror(const SystemPageTable &system_table, GpuPageTable &gpu_table)
        : sysTable(system_table), gpuTable(gpu_table)
    {}

    /**
     * Propagate all present-but-unmirrored PTEs in [begin, end) to the
     * GPU table and recompute fragments over the window.
     * @return the number of PTEs propagated.
     */
    std::uint64_t mirrorRange(Vpn begin, Vpn end);

    /**
     * Remove GPU-side mappings in [begin, end) (MMU-notifier path:
     * munmap, migration, ...). @return entries invalidated.
     */
    std::uint64_t invalidateRange(Vpn begin, Vpn end);

    /** Lifetime count of propagated PTEs (profiling surface). */
    std::uint64_t propagated() const { return propagatedCount; }
    /** Lifetime count of invalidated PTEs. */
    std::uint64_t invalidated() const { return invalidatedCount; }

    /** Attach UPMSan: mirrorRange then cross-checks frames of PTEs
     *  that are present on both sides (MirrorDivergence). */
    void setAuditor(audit::Auditor *auditor) { aud = auditor; }

    /** Attach UPMTrace: emits HmmMirror / HmmInvalidate per range op
     *  that actually touched at least one PTE. */
    void setTracer(trace::Tracer *tracer) { tr = tracer; }

  private:
    const SystemPageTable &sysTable;
    GpuPageTable &gpuTable;
    std::uint64_t propagatedCount = 0;
    std::uint64_t invalidatedCount = 0;
    audit::Auditor *aud = nullptr;
    trace::Tracer *tr = nullptr;
};

} // namespace upm::vm

#endif // UPM_VM_HMM_HH

/**
 * @file
 * Page-fault timing model.
 *
 * Functional fault resolution lives in AddressSpace; this class prices
 * it. The model separates *cold* single-fault latency (what the
 * paper's Fig. 8 latency benchmark measures: one isolated fault,
 * including trap entry, VMA walk, allocation and -- for GPU faults --
 * the interrupt + HMM + PTE-propagation + XNACK-replay round trip)
 * from *steady-state* per-page service time (what the throughput
 * benchmark in Fig. 7 measures once the handler pipeline is warm and
 * faults batch). Throughput additionally ramps with batch size as the
 * HMM walks amortize, and multi-core CPU faulting contends on
 * mmap_lock-style serialization.
 */

#ifndef UPM_VM_FAULT_HANDLER_HH
#define UPM_VM_FAULT_HANDLER_HH

#include <cstdint>

#include "common/rng.hh"
#include "common/status.hh"
#include "common/units.hh"

namespace upm::fabric {
class Fabric;
}

namespace upm::inject {
class Injector;
}

namespace upm::trace {
class Tracer;
}

namespace upm::vm {

/** Calibrated constants; see core/calibration.hh for provenance. */
struct FaultCosts
{
    // Cold single-fault medians (ns). Paper Fig. 8: CPU 9 us mean,
    // GPU minor 16 us, GPU major 18 us.
    SimTime cpuCold = 9000.0;
    SimTime gpuMinorCold = 16000.0;
    SimTime gpuMajorCold = 18000.0;

    // Lognormal spread: sigma chosen so the 95th percentile / median
    // ratios match the paper's tails (11/9, 20/16, 22/18).
    double cpuSigma = 0.120;
    double gpuSigma = 0.135;

    // Steady-state per-page service times (ns). Plateaus in Fig. 7:
    // 1 CPU core 872 K pages/s, GPU major 1.1 M/s, GPU minor 9.0 M/s.
    SimTime cpuSteady = 1147.0;
    SimTime gpuMajorSteady = 909.0;
    SimTime gpuMinorSteady = 111.0;

    // Batch-ramp constants: effective per-page time is
    // steady * (1 + ramp / sqrt(pages)), making throughput grow with
    // the number of concurrently faulted pages as the paper observes.
    double cpuRamp = 7.0;
    double gpuMajorRamp = 20.0;
    double gpuMinorRamp = 140.0;

    /** mmap_lock-style contention factor for multi-core CPU faulting:
     *  aggregate rate = cores * rate1 / (1 + alpha * (cores - 1)). */
    double cpuContentionAlpha = 0.166;

    // Bounded recovery from lost HMM fault-worker completions (only
    // reachable under injection): attempts beyond maxRetries report
    // Status::Timeout instead of hanging, the way amdgpu's fence
    // timeout turns a wedged fault into a reported GPU hang.
    unsigned maxRetries = 3;
    SimTime retryBackoff = 20000.0;
    double retryBackoffGrowth = 2.0;
};

/** Flavours of fault the model prices. */
enum class FaultType : std::uint8_t { Cpu, GpuMinor, GpuMajor };

/**
 * Running totals over every service() call, accumulated in call order
 * (the replay backend reproduces timeNs byte-exactly by folding
 * FaultService trace events in sequence order).
 */
struct ServiceTally
{
    std::uint64_t calls = 0;
    std::uint64_t pages = 0;
    SimTime timeNs = 0.0;
};

/** Outcome of a full fault-service attempt (see service()). */
struct FaultService
{
    Status status = Status::Success;
    /** Total simulated time spent, including retries and backoff. */
    SimTime time = 0.0;
    /** Completion-drop retries performed (injection only). */
    unsigned retries = 0;
    /** Extra XNACK replay rounds suffered (injection only). */
    unsigned replays = 0;

    explicit operator bool() const { return status == Status::Success; }
};

/**
 * Prices faults; owns a deterministic RNG for latency jitter so the
 * latency-distribution bench is reproducible.
 */
class FaultHandler
{
  public:
    explicit FaultHandler(const FaultCosts &costs = {},
                          std::uint64_t seed = 0xfa17u);

    /**
     * Sample a cold, isolated single-fault latency (lognormal).
     * @param hops xGMI hops to the faulted page's owning socket; a
     *        remote fault pays the full cross-fabric round trip on top
     *        (0, the default, is exactly the local model).
     */
    SimTime sampleColdLatency(FaultType type, unsigned hops = 0);

    /**
     * Reset the jitter RNG to @p seed. The parallel fault sweep seeds
     * each task with `exec::taskSeed(root, index)` so a sample depends
     * only on its task index, never on worker count or scheduling.
     */
    void reseed(std::uint64_t seed) { rng = SplitMix64(seed); }

    /**
     * Total service time for @p pages concurrent faults of @p type.
     * @param cpu_cores number of faulting cores (CPU type only).
     * @param hops xGMI hops to the owning socket: remote faults pay a
     *        per-batch pipeline-entry cost plus a per-page propagation
     *        adder from the fabric model. With hops 0 or no fabric
     *        attached the arithmetic is exactly the local model.
     */
    SimTime serviceTime(FaultType type, std::uint64_t pages,
                        unsigned cpu_cores = 1, unsigned hops = 0) const;

    /**
     * Full fault service with failure semantics: serviceTime() plus
     * whatever UPMInject throws at the pipeline -- delayed HMM
     * completions (time multiplier), XNACK replay storms (extra
     * per-round service), and dropped completions (bounded
     * retry-with-backoff; exhausting FaultCosts::maxRetries reports
     * Status::Timeout). With no injector attached the result is
     * exactly { Success, serviceTime(...) }, bit for bit.
     */
    FaultService service(FaultType type, std::uint64_t pages,
                         unsigned cpu_cores = 1, unsigned hops = 0);

    /** Attach UPMInject; null (the default) means no perturbation. */
    void setInjector(inject::Injector *injector) { inj = injector; }

    /** Attach the xGMI link model; null (the default) keeps every
     *  fault local and the timing byte-identical to the 1-socket
     *  model. */
    void setFabric(const fabric::Fabric *fabric_model)
    {
        fab = fabric_model;
    }

    /** Attach UPMTrace: emits ColdFault per sampled latency and
     *  FaultService per service() call (retry/replay chain included). */
    void setTracer(trace::Tracer *tracer) { tr = tracer; }

    /** Convenience: pages/s throughput for a scenario. */
    double throughput(FaultType type, std::uint64_t pages,
                      unsigned cpu_cores = 1, unsigned hops = 0) const;

    const FaultCosts &costs() const { return cost; }

    /** Totals over every service() call since construction / reset. */
    const ServiceTally &tally() const { return serviceTally; }
    void resetTally() { serviceTally = {}; }

  private:
    SimTime lognormal(SimTime median, double sigma);

    FaultCosts cost;
    SplitMix64 rng;
    ServiceTally serviceTally;
    /** xGMI model; null on a single-socket System (no remote cost). */
    const fabric::Fabric *fab = nullptr;
    /** UPMInject hook; null (no overhead) unless injection is on. */
    inject::Injector *inj = nullptr;
    /** UPMTrace hook; null (no overhead) unless tracing is on. */
    trace::Tracer *tr = nullptr;
};

} // namespace upm::vm

#endif // UPM_VM_FAULT_HANDLER_HH

/**
 * @file
 * The system (CPU) page table.
 *
 * MI300A keeps two page tables: the Linux system page table, walked by
 * the CPU cores, and a GPU page table walked by the GPU's UTC. This
 * class models the former. Mappings are stored *extent-coalesced*: a
 * sorted map of [vpn, vpn+len) runs. A run is either *strided* (page
 * vpn+i -> frame+i, physically contiguous) or a *scatter* run carrying
 * an explicit per-page frame vector — one node for a million-page
 * interleaved pinned buffer instead of a million tree nodes. Runs
 * never overlap; strided runs are maximally merged against strided
 * neighbours, so a multi-GiB hipMalloc costs a handful of nodes and
 * range operations are O(log runs + touched runs).
 */

#ifndef UPM_VM_PAGE_TABLE_HH
#define UPM_VM_PAGE_TABLE_HH

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "mem/backing_store.hh"
#include "mem/geometry.hh"

namespace upm::vm {

using mem::FrameId;
using mem::VirtAddr;

/** Virtual page number. */
using Vpn = std::uint64_t;

/** Page-level attributes; equality matters for fragment formation. */
struct PteFlags
{
    bool writable = true;
    bool pinned = false;    //!< page-locked (mlock / hipHostRegister)
    bool uncached = false;  //!< GPU-side uncacheable (managed statics)

    bool operator==(const PteFlags &) const = default;
};

/** One page-table entry. */
struct Pte
{
    FrameId frame = 0;
    PteFlags flags;
};

/**
 * An extent of present pages sharing @ref flags. When @ref scatter is
 * null, page vpn+i maps frame+i; otherwise scatter[i] gives the frame
 * of page vpn+i (and frame == scatter[0]). The scatter pointer aliases
 * table-owned storage: it is valid only until the next table mutation,
 * so callers that outlive the callback must copy the frames out.
 */
struct PteRun
{
    Vpn vpn = 0;
    std::uint64_t len = 0;
    FrameId frame = 0;
    PteFlags flags;
    const FrameId *scatter = nullptr;

    Vpn end() const { return vpn + len; }

    FrameId
    frameOf(Vpn v) const
    {
        return scatter != nullptr ? scatter[v - vpn] : frame + (v - vpn);
    }
};

/** vpn helpers. */
constexpr Vpn
vpnOf(VirtAddr addr)
{
    return addr >> mem::kPageShift;
}

constexpr VirtAddr
addrOf(Vpn vpn)
{
    return vpn << mem::kPageShift;
}

/**
 * Extent-coalesced page table. Lookup is O(log runs); range iteration
 * is ordered, which the HMM mirror and fragment computation rely on.
 *
 * Invariants: runs never overlap, and adjacent *strided* runs that are
 * virtually and physically contiguous with equal flags are merged on
 * insert. Scatter runs are kept as inserted (bulk faults and pinned
 * buffers arrive as one batch each), so the representation of a given
 * mapping may depend on insertion granularity — every consumer reads
 * per-page *values*, which do not.
 */
class SystemPageTable
{
  public:
    /** Map @p vpn to @p frame. Panics if already present. */
    void
    insert(Vpn vpn, FrameId frame, PteFlags flags = {})
    {
        insertRange(vpn, 1, frame, flags);
    }

    /**
     * Map [vpn, vpn+len) to frames [frame, frame+len), merging with
     * contiguous same-flag strided neighbours. Panics if any page is
     * present.
     */
    void insertRange(Vpn vpn, std::uint64_t len, FrameId frame,
                     PteFlags flags = {});

    /**
     * Map page vpn+i to frames[i] for i in [0, n) as one run. A
     * frame-contiguous batch degenerates to a strided run; anything
     * else becomes a single scatter run (no per-page tree nodes).
     * Panics if any page is present.
     */
    void insertFrames(Vpn vpn, const FrameId *frames, std::uint64_t n,
                      PteFlags flags = {});

    /** insertFrames overload that adopts the vector (no copy). */
    void insertFrames(Vpn vpn, std::vector<FrameId> &&frames,
                      PteFlags flags = {});

    /** @return the PTE if present. */
    std::optional<Pte>
    lookup(Vpn vpn) const
    {
        auto it = findRun(vpn);
        if (it == runs.end())
            return std::nullopt;
        return Pte{frameAt(it, vpn), it->second.flags};
    }

    /** @return the run containing @p vpn, if present. */
    std::optional<PteRun> lookupRun(Vpn vpn) const;

    bool present(Vpn vpn) const { return findRun(vpn) != runs.end(); }

    /** Unmap @p vpn. @return the freed frame if it was mapped. */
    std::optional<FrameId> remove(Vpn vpn);

    /**
     * Unmap every present page in [begin, end), splitting runs at the
     * boundaries. @param fn called once per removed sub-run with a
     * (const PteRun &) describing it, in vpn order, *before* the table
     * is restructured — the run's scatter pointer is valid only for
     * the duration of the call, and @p fn must not re-enter the table.
     * @return pages removed.
     */
    template <typename Fn>
    std::uint64_t
    removeRange(Vpn begin, Vpn end, Fn &&fn)
    {
        std::uint64_t removed = 0;
        if (begin >= end)
            return removed;
        auto it = runs.upper_bound(begin);
        if (it != runs.begin()) {
            --it;
            if (begin >= it->first + it->second.len)
                ++it;
        }
        while (it != runs.end() && it->first < end) {
            Vpn run_vpn = it->first;
            Run &run = it->second;
            Vpn cut_begin = std::max(begin, run_vpn);
            Vpn cut_end = std::min(end, run_vpn + run.len);
            std::uint64_t cut_len = cut_end - cut_begin;
            removed += cut_len;
            fn(PteRun{cut_begin, cut_len, frameAt(it, cut_begin),
                      run.flags,
                      run.scatter.empty()
                          ? nullptr
                          : run.scatter.data() + (cut_begin - run_vpn)});

            bool keep_head = cut_begin > run_vpn;
            bool keep_tail = cut_end < run_vpn + run.len;
            if (keep_tail) {
                Run tail;
                tail.len = run_vpn + run.len - cut_end;
                tail.flags = run.flags;
                if (run.scatter.empty()) {
                    tail.frame = run.frame + (cut_end - run_vpn);
                } else {
                    tail.scatter.assign(
                        run.scatter.begin() + (cut_end - run_vpn),
                        run.scatter.end());
                    tail.frame = tail.scatter.front();
                }
                if (keep_head) {
                    run.len = cut_begin - run_vpn;
                    if (!run.scatter.empty())
                        run.scatter.resize(run.len);
                    ++it;
                } else {
                    it = runs.erase(it);
                }
                it = runs.emplace_hint(it, cut_end, std::move(tail));
                ++it;
            } else if (keep_head) {
                run.len = cut_begin - run_vpn;
                if (!run.scatter.empty())
                    run.scatter.resize(run.len);
                ++it;
            } else {
                it = runs.erase(it);
            }
        }
        presentPages -= removed;
        return removed;
    }

    /** Update flags of a present entry (pin/unpin). Panics if absent. */
    void setFlags(Vpn vpn, PteFlags flags);

    /**
     * Update flags of every present page in [begin, end), splitting at
     * the boundaries and re-merging neighbours that become compatible.
     * @return pages updated.
     */
    std::uint64_t setFlagsRange(Vpn begin, Vpn end, PteFlags flags);

    /** Number of present pages. */
    std::uint64_t presentCount() const { return presentPages; }

    /** Number of stored runs (diagnostics / tests). */
    std::uint64_t runCount() const { return runs.size(); }

    /** Present pages within [begin, end). O(log runs + runs hit). */
    std::uint64_t presentInRange(Vpn begin, Vpn end) const;

    /**
     * Visit present entries in [begin, end) in vpn order.
     * @param fn callable (Vpn, const Pte &).
     */
    template <typename Fn>
    void
    forRange(Vpn begin, Vpn end, Fn &&fn) const
    {
        forEachRun(begin, end, [&](const PteRun &run) {
            Pte pte{run.frame, run.flags};
            for (Vpn vpn = run.vpn; vpn < run.end(); ++vpn) {
                pte.frame = run.scatter != nullptr
                                ? run.scatter[vpn - run.vpn]
                                : run.frame + (vpn - run.vpn);
                fn(vpn, pte);
            }
        });
    }

    /**
     * Visit runs overlapping [begin, end) in vpn order, clipped to the
     * window. @param fn callable (const PteRun &); the run's scatter
     * pointer is valid only while the table is unmodified.
     */
    template <typename Fn>
    void
    forEachRun(Vpn begin, Vpn end, Fn &&fn) const
    {
        if (begin >= end)
            return;
        auto it = runs.upper_bound(begin);
        if (it != runs.begin()) {
            --it;
            if (begin >= it->first + it->second.len)
                ++it;
        }
        for (; it != runs.end() && it->first < end; ++it) {
            Vpn clip_begin = std::max(begin, it->first);
            Vpn clip_end = std::min(end, it->first + it->second.len);
            fn(PteRun{clip_begin, clip_end - clip_begin,
                      frameAt(it, clip_begin), it->second.flags,
                      it->second.scatter.empty()
                          ? nullptr
                          : it->second.scatter.data() +
                                (clip_begin - it->first)});
        }
    }

    /**
     * Visit the *unmapped* gaps of [begin, end) in vpn order.
     * @param fn callable (Vpn gap_begin, Vpn gap_end).
     */
    template <typename Fn>
    void
    forEachGap(Vpn begin, Vpn end, Fn &&fn) const
    {
        Vpn cursor = begin;
        forEachRun(begin, end, [&](const PteRun &run) {
            if (cursor < run.vpn)
                fn(cursor, run.vpn);
            cursor = run.end();
        });
        if (cursor < end)
            fn(cursor, end);
    }

  private:
    /**
     * Stored extent: [key, key+len). Strided (scatter empty, frame
     * meaningful) or scatter (scatter.size() == len, frame ==
     * scatter[0]).
     */
    struct Run
    {
        std::uint64_t len = 0;
        FrameId frame = 0;
        PteFlags flags;
        std::vector<FrameId> scatter;
    };

    using RunMap = std::map<Vpn, Run>;

    /** Iterator to the run containing @p vpn, or end(). One descent. */
    RunMap::const_iterator findRun(Vpn vpn) const;

    /** Frame of page @p vpn, which must lie inside @p it's run. */
    template <typename It>
    static FrameId
    frameAt(It it, Vpn vpn)
    {
        const auto &run = it->second;
        return run.scatter.empty()
                   ? run.frame + (vpn - it->first)
                   : run.scatter[vpn - it->first];
    }

    RunMap runs;
    std::uint64_t presentPages = 0;
};

} // namespace upm::vm

#endif // UPM_VM_PAGE_TABLE_HH

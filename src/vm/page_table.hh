/**
 * @file
 * The system (CPU) page table.
 *
 * MI300A keeps two page tables: the Linux system page table, walked by
 * the CPU cores, and a GPU page table walked by the GPU's UTC. This
 * class models the former: a sorted vpn -> (frame, flags) map with the
 * attributes the characterization cares about (pinned, uncached).
 */

#ifndef UPM_VM_PAGE_TABLE_HH
#define UPM_VM_PAGE_TABLE_HH

#include <cstdint>
#include <map>
#include <optional>

#include "mem/backing_store.hh"
#include "mem/geometry.hh"

namespace upm::vm {

using mem::FrameId;
using mem::VirtAddr;

/** Virtual page number. */
using Vpn = std::uint64_t;

/** Page-level attributes; equality matters for fragment formation. */
struct PteFlags
{
    bool writable = true;
    bool pinned = false;    //!< page-locked (mlock / hipHostRegister)
    bool uncached = false;  //!< GPU-side uncacheable (managed statics)

    bool operator==(const PteFlags &) const = default;
};

/** One page-table entry. */
struct Pte
{
    FrameId frame = 0;
    PteFlags flags;
};

/** vpn helpers. */
constexpr Vpn
vpnOf(VirtAddr addr)
{
    return addr >> mem::kPageShift;
}

constexpr VirtAddr
addrOf(Vpn vpn)
{
    return vpn << mem::kPageShift;
}

/**
 * Sorted page table. Lookup is O(log n); range iteration is ordered,
 * which the HMM mirror and fragment computation rely on.
 */
class SystemPageTable
{
  public:
    /** Map @p vpn to @p frame. Panics if already present. */
    void insert(Vpn vpn, FrameId frame, PteFlags flags = {});

    /** @return the PTE if present. */
    std::optional<Pte> lookup(Vpn vpn) const;

    bool present(Vpn vpn) const { return entries.count(vpn) != 0; }

    /** Unmap @p vpn. @return the freed frame if it was mapped. */
    std::optional<FrameId> remove(Vpn vpn);

    /** Update flags of a present entry (pin/unpin). */
    void setFlags(Vpn vpn, PteFlags flags);

    /** Number of present pages. */
    std::uint64_t presentCount() const { return entries.size(); }

    /** Present pages within [begin, end). */
    std::uint64_t presentInRange(Vpn begin, Vpn end) const;

    /**
     * Visit present entries in [begin, end) in vpn order.
     * @param fn callable (Vpn, const Pte &).
     */
    template <typename Fn>
    void
    forRange(Vpn begin, Vpn end, Fn &&fn) const
    {
        for (auto it = entries.lower_bound(begin);
             it != entries.end() && it->first < end; ++it) {
            fn(it->first, it->second);
        }
    }

  private:
    std::map<Vpn, Pte> entries;
};

} // namespace upm::vm

#endif // UPM_VM_PAGE_TABLE_HH

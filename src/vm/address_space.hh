/**
 * @file
 * The process address space: VMAs, population policies, translation.
 *
 * Every allocator in Table 1 of the paper is, underneath, an mmap with
 * a policy: whether physical pages are allocated up-front or on demand,
 * which placement path the frames come from (contiguous buddy runs,
 * stack-interleaved pinned frames, scattered on-demand frames, or GPU
 * fault batches), whether the GPU page table is populated, and whether
 * GPU accesses are cached. The AddressSpace owns both page tables, the
 * HMM mirror, and the functional fault-resolution paths; timing for
 * faults lives in FaultHandler.
 */

#ifndef UPM_VM_ADDRESS_SPACE_HH
#define UPM_VM_ADDRESS_SPACE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/status.hh"
#include "mem/backing_store.hh"
#include "mem/frame_allocator.hh"
#include "vm/gpu_page_table.hh"
#include "vm/hmm.hh"
#include "vm/page_table.hh"

namespace upm::audit {
class Auditor;
}

namespace upm::mem {
class NodeMemory;
}

namespace upm::trace {
class Tracer;
}

namespace upm::policy {
class PolicyEngine;
}

namespace upm::vm {

/** Which physical-frame source populates a VMA. */
enum class Placement : std::uint8_t {
    Scattered,    //!< CPU first-touch: fragmented on-demand pool
    Interleaved,  //!< pinned host buffers: stack round-robin singles
    Contiguous,   //!< hipMalloc: large buddy runs
    FaultBatch,   //!< GPU first-touch: short contiguous runs
};

/**
 * Which socket's HBM shard serves a VMA on a multi-socket node.
 * Irrelevant (and ignored) on a single-socket System, where no
 * NodeMemory is attached and every allocation takes the legacy path.
 */
enum class SocketPolicy : std::uint8_t {
    Default,      //!< resolve to the address space's default at mmap
    Home,         //!< every page on the VMA's home socket
    FirstTouch,   //!< pages land on the socket that faults them in
    Interleave,   //!< 2 MiB chunks round-robin across all sockets
    ReplicateRO,  //!< home copy plus a read-only replica per socket
};

const char *socketPolicyName(SocketPolicy policy);

/** Per-VMA policy (set by the allocator layer). */
struct VmaPolicy
{
    bool cpuAccess = true;
    /** Populate the GPU page table when pages are created. */
    bool gpuMapped = false;
    /** Physical allocation deferred to first touch. */
    bool onDemand = true;
    bool pinned = false;
    /** GPU accesses bypass GPU caches (managed statics). */
    bool uncachedGpu = false;
    Placement placement = Placement::Scattered;
    /** Cross-socket placement; Default defers to the address space. */
    SocketPolicy socketPolicy = SocketPolicy::Default;
    /** Home socket for Home / ReplicateRO placement. */
    unsigned homeSocket = 0;
};

/** One mapped region. */
struct Vma
{
    VirtAddr base = 0;
    std::uint64_t size = 0;
    VmaPolicy policy;
    std::string name;

    /** Pages populated through the scattered (CPU first-touch) path;
     *  such pages land on arbitrary fragmented frames, which degrades
     *  Infinity Cache set utilization (paper Section 5.4). */
    std::uint64_t pagesScattered = 0;
    /** Pages populated through any placement-friendly path
     *  (contiguous, interleaved, or GPU fault batches). */
    std::uint64_t pagesPlaced = 0;

    /** Interleave rotation cursor (next socket to receive a chunk). */
    unsigned nextSocket = 0;
    /** ReplicateRO: replica runs on non-home sockets, freed with the
     *  VMA (not mapped by any page table; the leak scan is told). */
    std::vector<mem::FrameRange> replicaRanges;

    double
    scatteredFraction() const
    {
        std::uint64_t total = pagesScattered + pagesPlaced;
        return total == 0
                   ? 0.0
                   : static_cast<double>(pagesScattered) /
                         static_cast<double>(total);
    }

    Vpn beginVpn() const { return vpnOf(base); }
    Vpn endVpn() const { return vpnOf(base + size + mem::kPageSize - 1); }
    std::uint64_t numPages() const { return endVpn() - beginVpn(); }
    bool contains(VirtAddr a) const { return a >= base && a < base + size; }
};

/** Outcome of a GPU access / fault-resolution attempt. */
enum class GpuFaultKind : std::uint8_t {
    None,         //!< already mapped, no fault
    Minor,        //!< present in system table; mirrored to GPU table
    Major,        //!< physical allocation performed
    Violation,    //!< not resolvable (XNACK off); fatal on real HW
    OutOfMemory,  //!< no frames for a major fault (nothing mapped)
};

/** Outcome of tryMmapAnon(). */
struct [[nodiscard]] MmapResult
{
    Status status = Status::Success;
    VirtAddr base = 0;

    explicit operator bool() const { return status == Status::Success; }
};

/** Outcome of tryPopulateRange() / tryResolveCpuFaultRange(). */
struct [[nodiscard]] PopulateResult
{
    Status status = Status::Success;
    /** Pages newly populated (may be nonzero even on failure: pages
     *  mapped before the allocator ran dry stay mapped, and munmap
     *  reclaims them). */
    std::uint64_t pages = 0;

    explicit operator bool() const { return status == Status::Success; }
};

/**
 * The simulated process address space. Single-threaded model object;
 * engines serialize access (the real kernel takes mmap_lock too).
 */
class AddressSpace
{
  public:
    AddressSpace(mem::FrameAllocator &frame_allocator,
                 mem::BackingStore &backing_store);

    /**
     * Create a VMA of @p size bytes (rounded up to pages) and attach
     * host backing. Up-front policies are NOT populated here; the
     * allocator layer calls populateRange so it can charge time.
     *
     * Recoverable failures: Status::InvalidValue for a zero-length or
     * overlapping request, Status::OutOfMemory when the simulated VA
     * window is exhausted. Nothing is mapped on failure.
     */
    MmapResult tryMmapAnon(std::uint64_t size, const VmaPolicy &policy,
                           std::string name = "");

    /** Convenience form of tryMmapAnon(); throws StatusError. */
    VirtAddr mmapAnon(std::uint64_t size, const VmaPolicy &policy,
                      std::string name = "");

    /**
     * Unmap: free frames, drop PTEs from both tables, drop backing.
     * @return Status::NotFound for a base that is not a VMA.
     */
    Status munmap(VirtAddr base);

    /**
     * Teardown form of munmap(): panics on failure. For callers
     * unmapping a VMA they themselves created (allocator deallocate
     * and rollback paths), where NotFound is a bookkeeping bug.
     */
    void munmapChecked(VirtAddr base);

    const Vma *findVma(VirtAddr addr) const;

    /** Visit every VMA in address order. @param fn (const Vma &). */
    template <typename Fn>
    void
    forEachVma(Fn &&fn) const
    {
        for (const auto &[base, vma] : vmas)
            fn(vma);
    }

    /**
     * Populate [base, base+size) physically according to the VMA's
     * placement, mapping the GPU table if the policy says so.
     *
     * Recoverable failures: Status::NotFound for an unmapped base,
     * Status::OutOfMemory when the frame allocator runs dry (pages
     * mapped before exhaustion stay mapped; munmap reclaims them).
     */
    PopulateResult tryPopulateRange(VirtAddr base, std::uint64_t size);

    /** Convenience form of tryPopulateRange(); throws StatusError.
     *  @return pages newly populated. */
    std::uint64_t populateRange(VirtAddr base, std::uint64_t size);

    /**
     * hipHostRegister semantics: fault in any missing pages through
     * the normal CPU path (keeping the region's scattered placement),
     * pin every page, and map the region in the GPU page table.
     * @return Status::NotFound for an unknown base; OOM propagates
     *         from population (the region is left unpinned).
     */
    Status pinAndMapGpu(VirtAddr base);

    /** Resolve a CPU first-touch fault on @p vpn (one scattered
     *  page); throws StatusError on segfault / protection / OOM. */
    void resolveCpuFault(Vpn vpn);

    /**
     * Resolve CPU first-touch faults for every missing page in
     * [first, last) in one batch: equivalent to calling
     * resolveCpuFault per page (the scattered pool hands out the same
     * frame sequence) without the per-page table walks.
     *
     * Recoverable failures: Status::AccessFault for an unmapped or
     * CPU-inaccessible vpn (a real segfault), Status::OutOfMemory on
     * frame exhaustion (nothing is mapped in that case).
     */
    PopulateResult tryResolveCpuFaultRange(Vpn first, Vpn last);

    /** Convenience form of tryResolveCpuFaultRange(); throws
     *  StatusError. @return pages faulted in. */
    std::uint64_t resolveCpuFaultRange(Vpn first, Vpn last);

    /**
     * Resolve a GPU fault batch on [first, first+count). Decides
     * minor (mirror only) vs major (allocate + map); honours XNACK.
     * A major fault that finds no free frames returns
     * GpuFaultKind::OutOfMemory with no partial mappings.
     */
    GpuFaultKind resolveGpuFault(Vpn first, std::uint64_t count);

    /** @return true if the CPU can access @p addr without a fault. */
    bool cpuPresent(VirtAddr addr) const;
    /** @return true if the GPU can access @p addr without a fault. */
    bool gpuPresent(VirtAddr addr) const;

    /** Translate via the system table; panics if unmapped. */
    mem::PhysAddr translate(VirtAddr addr) const;

    /** Physical frames currently backing [base, base+size). */
    std::vector<FrameId> framesOf(VirtAddr base, std::uint64_t size) const;

    /** Pages-per-stack histogram for [base, base+size). */
    std::vector<std::uint64_t> stackLoadOf(VirtAddr base,
                                           std::uint64_t size) const;

    SystemPageTable &systemTable() { return sysTable; }
    const SystemPageTable &systemTable() const { return sysTable; }
    GpuPageTable &gpuTable() { return gpuPt; }
    const GpuPageTable &gpuTable() const { return gpuPt; }
    HmmMirror &mirror() { return hmm; }
    mem::FrameAllocator &frames() { return frameAlloc; }
    mem::BackingStore &backing() { return backingStore; }

    bool xnackEnabled() const { return xnack; }
    void setXnack(bool enabled) { xnack = enabled; }

    /**
     * Confine this address space to the private VA window
     * [@p base, @p end). The serving layer gives every simulated
     * process a disjoint, never-recycled window so the node-wide
     * UPMSan VA shadow never sees two processes alive (or one dead,
     * one alive) at the same address. Must be called before the first
     * mmap; panics otherwise.
     */
    void setVaWindow(VirtAddr base, VirtAddr end);

    /** Exclusive end of the VA window (for capacity queries). */
    VirtAddr vaWindowEnd() const { return vaEnd; }

    /**
     * Graceful-degradation lever: free every ReplicateRO VMA's
     * read-only replica runs and demote those VMAs to Home placement
     * (so later population does not re-replicate). The home copies --
     * the ones page tables map -- are untouched.
     * @return pages of replica memory freed back to the shards.
     */
    std::uint64_t demoteReplicas();

    /**
     * Attach the multi-socket frame shards. Null (the default) keeps
     * the legacy single-allocator paths -- byte-identical behaviour.
     * With a node attached, allocations route to shards per the VMA's
     * SocketPolicy and frees route by global frame id.
     */
    void setNode(mem::NodeMemory *node_memory) { node = node_memory; }
    mem::NodeMemory *nodeMemory() { return node; }

    /** Socket the currently-executing engine runs on (stamps
     *  first-touch placement; 0 on single-socket nodes). */
    void setCurrentSocket(unsigned socket) { curSocket = socket; }
    unsigned currentSocket() const { return curSocket; }

    /** Placement applied to VMAs mapped with SocketPolicy::Default.
     *  @p policy must itself not be Default. */
    void setDefaultSocketPolicy(SocketPolicy policy, unsigned home = 0);
    SocketPolicy defaultSocketPolicy() const { return defSocketPolicy; }
    unsigned defaultHomeSocket() const { return defHomeSocket; }

    /** Lifetime counters (profiling surface). */
    std::uint64_t cpuFaults() const { return cpuFaultCount; }
    std::uint64_t gpuMajorFaults() const { return gpuMajorCount; }
    std::uint64_t gpuMinorFaults() const { return gpuMinorCount; }

    /** Attach UPMSan to this address space and its HMM mirror. */
    void setAuditor(audit::Auditor *auditor);

    /**
     * Attach UPMPolicy. Null (the default) keeps every legacy path --
     * byte-identical behaviour. With an engine whose PlacementKind is
     * not Inherit, sourceFor() routes socket choice through the
     * engine instead of the VMA's SocketPolicy; fault resolutions
     * feed the engine's access counters either way. @p space_id
     * namespaces this address space's pages in engine PageKeys
     * (0 for the primary space, the pid for process spaces).
     */
    void setPolicyEngine(policy::PolicyEngine *engine,
                         std::uint64_t space_id = 0);
    policy::PolicyEngine *policyEngine() const { return pol; }

    /**
     * Attach UPMTrace to this address space and its HMM mirror.
     * Emits VmaMap/VmaUnmap, Populate, CpuFault/GpuFault batches and
     * one ExtentMap event per contiguous (vpn, frame) run inserted
     * into the system table -- the stream the trace-replay tests
     * rebuild the final page table from.
     */
    void setTracer(trace::Tracer *tracer);

    /**
     * Full mirror cross-check: every GPU PTE must have a matching
     * system PTE (else StaleMirror) mapping the same frame (else
     * MirrorDivergence). Run at teardown by System::finalizeAudit().
     * @return violations found.
     */
    std::uint64_t auditMirrorConsistency(audit::Auditor &auditor) const;

  private:
    Vma *findVmaMutable(VirtAddr addr);

    /** Map a frame list as one run starting at @p vpn (adopts the
     *  list: a non-contiguous batch becomes its scatter vector). */
    void mapFrames(const Vma &vma, Vpn vpn,
                   std::vector<FrameId> frame_list);
    /** Map contiguous ranges starting at @p vpn. */
    void mapRanges(const Vma &vma, Vpn vpn,
                   const std::vector<mem::FrameRange> &ranges);
    PteFlags flagsFor(const Vma &vma) const;
    /** Emit ExtentMap events for frames[0..n) mapped at consecutive
     *  vpns from @p vpn, coalescing physically contiguous runs. */
    void emitListExtents(Vpn vpn, const FrameId *frames,
                         std::uint64_t n);
    /** Shard serving @p vma's next allocation on this fault/populate
     *  path (the legacy allocator when no node is attached). */
    mem::FrameAllocator &sourceFor(const Vma &vma);
    /** Allocate @p n frames from @p src per @p vma's placement and map
     *  them at @p vpn. @return false on OOM (nothing mapped). */
    bool allocAndMap(Vma &vma, mem::FrameAllocator &src, Vpn vpn,
                     std::uint64_t n);
    /** Free a frame run through the node (shard-routed) or the legacy
     *  allocator. */
    bool freeRouted(const mem::FrameRange &range);
    /** ReplicateRO: allocate read-only replicas of @p n pages on every
     *  non-home socket. @return false on OOM. */
    bool replicate(Vma &vma, std::uint64_t n);

    mem::FrameAllocator &frameAlloc;
    mem::BackingStore &backingStore;
    SystemPageTable sysTable;
    GpuPageTable gpuPt;
    HmmMirror hmm;

    std::map<VirtAddr, Vma> vmas;
    VirtAddr nextBase;
    /** Exclusive end of the VA window (default: base + 1 TiB). */
    VirtAddr vaEnd;
    bool xnack = false;
    /** Multi-socket shards; null on a single-socket System. */
    mem::NodeMemory *node = nullptr;
    unsigned curSocket = 0;
    SocketPolicy defSocketPolicy = SocketPolicy::Home;
    unsigned defHomeSocket = 0;
    /** Shuffles the virtual arrival order of GPU major faults. */
    SplitMix64 faultRng{0x6f4au};

    std::uint64_t cpuFaultCount = 0;
    std::uint64_t gpuMajorCount = 0;
    std::uint64_t gpuMinorCount = 0;
    /** UPMSan hook; null (no overhead) unless auditing is enabled. */
    audit::Auditor *aud = nullptr;
    /** UPMTrace hook; null (no overhead) unless tracing is on. */
    trace::Tracer *tr = nullptr;
    /** UPMPolicy hook; null (no overhead) unless a policy engine is
     *  wired. */
    policy::PolicyEngine *pol = nullptr;
    /** PageKey.space value for this address space's pages. */
    std::uint64_t polSpace = 0;
};

} // namespace upm::vm

#endif // UPM_VM_ADDRESS_SPACE_HH

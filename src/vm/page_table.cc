#include "vm/page_table.hh"

#include "common/log.hh"

namespace upm::vm {

void
SystemPageTable::insert(Vpn vpn, FrameId frame, PteFlags flags)
{
    auto [it, inserted] = entries.emplace(vpn, Pte{frame, flags});
    (void)it;
    if (!inserted)
        panic("system PTE for vpn 0x%llx already present",
              static_cast<unsigned long long>(vpn));
}

std::optional<Pte>
SystemPageTable::lookup(Vpn vpn) const
{
    auto it = entries.find(vpn);
    if (it == entries.end())
        return std::nullopt;
    return it->second;
}

std::optional<FrameId>
SystemPageTable::remove(Vpn vpn)
{
    auto it = entries.find(vpn);
    if (it == entries.end())
        return std::nullopt;
    FrameId frame = it->second.frame;
    entries.erase(it);
    return frame;
}

void
SystemPageTable::setFlags(Vpn vpn, PteFlags flags)
{
    auto it = entries.find(vpn);
    if (it == entries.end())
        panic("setFlags on absent vpn 0x%llx",
              static_cast<unsigned long long>(vpn));
    it->second.flags = flags;
}

std::uint64_t
SystemPageTable::presentInRange(Vpn begin, Vpn end) const
{
    std::uint64_t n = 0;
    forRange(begin, end, [&](Vpn, const Pte &) { ++n; });
    return n;
}

} // namespace upm::vm

#include "vm/page_table.hh"

#include <algorithm>

#include "common/log.hh"

namespace upm::vm {

SystemPageTable::RunMap::const_iterator
SystemPageTable::findRun(Vpn vpn) const
{
    auto it = runs.upper_bound(vpn);
    if (it == runs.begin())
        return runs.end();
    --it;
    if (vpn >= it->first + it->second.len)
        return runs.end();
    return it;
}

void
SystemPageTable::insertRange(Vpn vpn, std::uint64_t len, FrameId frame,
                             PteFlags flags)
{
    if (len == 0)
        return;
    auto next = runs.lower_bound(vpn);
    auto prev = next;
    bool merge_prev = false;
    if (prev != runs.begin()) {
        --prev;
        if (vpn < prev->first + prev->second.len)
            panic("system PTE for vpn 0x%llx already present",
                  static_cast<unsigned long long>(vpn));
        merge_prev = prev->second.scatter.empty() &&
                     prev->first + prev->second.len == vpn &&
                     prev->second.frame + prev->second.len == frame &&
                     prev->second.flags == flags;
    }
    if (next != runs.end() && next->first < vpn + len)
        panic("system PTE for vpn 0x%llx already present",
              static_cast<unsigned long long>(next->first));
    bool merge_next = next != runs.end() &&
                      next->second.scatter.empty() &&
                      next->first == vpn + len &&
                      next->second.frame == frame + len &&
                      next->second.flags == flags;

    if (merge_prev && merge_next) {
        prev->second.len += len + next->second.len;
        runs.erase(next);
    } else if (merge_prev) {
        prev->second.len += len;
    } else if (merge_next) {
        std::uint64_t merged_len = len + next->second.len;
        runs.erase(next);
        runs.emplace(vpn, Run{merged_len, frame, flags, {}});
    } else {
        runs.emplace_hint(next, vpn, Run{len, frame, flags, {}});
    }
    presentPages += len;
}

void
SystemPageTable::insertFrames(Vpn vpn, const FrameId *frames,
                              std::uint64_t n, PteFlags flags)
{
    insertFrames(vpn, std::vector<FrameId>(frames, frames + n), flags);
}

void
SystemPageTable::insertFrames(Vpn vpn, std::vector<FrameId> &&frames,
                              PteFlags flags)
{
    std::uint64_t n = frames.size();
    if (n == 0)
        return;
    bool strided = true;
    for (std::uint64_t i = 1; strided && i < n; ++i)
        strided = frames[i] == frames[0] + i;
    if (strided) {
        insertRange(vpn, n, frames[0], flags);
        return;
    }

    auto next = runs.lower_bound(vpn);
    if (next != runs.begin()) {
        auto prev = std::prev(next);
        if (vpn < prev->first + prev->second.len)
            panic("system PTE for vpn 0x%llx already present",
                  static_cast<unsigned long long>(vpn));
    }
    if (next != runs.end() && next->first < vpn + n)
        panic("system PTE for vpn 0x%llx already present",
              static_cast<unsigned long long>(next->first));

    FrameId first = frames.front();
    runs.emplace_hint(next, vpn,
                      Run{n, first, flags, std::move(frames)});
    presentPages += n;
}

std::optional<PteRun>
SystemPageTable::lookupRun(Vpn vpn) const
{
    auto it = findRun(vpn);
    if (it == runs.end())
        return std::nullopt;
    return PteRun{it->first, it->second.len, it->second.frame,
                  it->second.flags,
                  it->second.scatter.empty()
                      ? nullptr
                      : it->second.scatter.data()};
}

std::optional<FrameId>
SystemPageTable::remove(Vpn vpn)
{
    std::optional<FrameId> freed;
    removeRange(vpn, vpn + 1,
                [&](const PteRun &cut) { freed = cut.frame; });
    return freed;
}

void
SystemPageTable::setFlags(Vpn vpn, PteFlags flags)
{
    if (setFlagsRange(vpn, vpn + 1, flags) == 0)
        panic("setFlags on absent vpn 0x%llx",
              static_cast<unsigned long long>(vpn));
}

std::uint64_t
SystemPageTable::setFlagsRange(Vpn begin, Vpn end, PteFlags flags)
{
    // Carve out the affected sub-runs, then re-insert them with the new
    // flags; insertRange's merge logic restores coalescing against both
    // the untouched remainders and the outside neighbours. Scatter
    // frames must be copied out first: the callback pointers die with
    // the removal.
    struct Cut
    {
        Vpn vpn;
        std::uint64_t len;
        FrameId frame;
        std::vector<FrameId> scatter;
    };
    std::vector<Cut> affected;
    forEachRun(begin, end, [&](const PteRun &run) {
        Cut cut{run.vpn, run.len, run.frame, {}};
        if (run.scatter != nullptr)
            cut.scatter.assign(run.scatter, run.scatter + run.len);
        affected.push_back(std::move(cut));
    });
    std::uint64_t updated = 0;
    for (auto &cut : affected) {
        removeRange(cut.vpn, cut.vpn + cut.len, [](const PteRun &) {});
        if (cut.scatter.empty())
            insertRange(cut.vpn, cut.len, cut.frame, flags);
        else
            insertFrames(cut.vpn, std::move(cut.scatter), flags);
        updated += cut.len;
    }
    return updated;
}

std::uint64_t
SystemPageTable::presentInRange(Vpn begin, Vpn end) const
{
    std::uint64_t n = 0;
    forEachRun(begin, end, [&](const PteRun &run) { n += run.len; });
    return n;
}

} // namespace upm::vm

/**
 * @file
 * The GPU page table with AMD's adaptive fragment scheme.
 *
 * Each GPU PTE carries a 5-bit *fragment* field: log2 of the number of
 * pages in a virtually and physically contiguous, identically-flagged,
 * naturally-aligned block containing the page. The amdgpu driver sets
 * it opportunistically by scanning for maximal contiguous ranges when
 * it writes PTEs (see the `amdgpu_vm_pt.c` comment the paper cites).
 * A UTCL1 entry covers a whole fragment, so large fragments multiply
 * TLB reach -- the mechanism behind hipMalloc's bandwidth advantage
 * (paper Sections 4.2/5.3).
 *
 * Storage is extent-coalesced like SystemPageTable: a sorted map of
 * [vpn, vpn+len) runs, strided or carrying an explicit scatter frame
 * vector (one node per mirrored fault batch instead of one per page).
 * Fragment values are *stamped by window* (each recomputeFragments
 * call only rewrites the pages inside its window), so they cannot be
 * derived from the run alone; each run carries a run-length-encoded
 * list of fragment segments that reproduces the per-page stamping
 * history exactly. An empty segment list is the common case and means
 * "every page fragment 0" (the value fresh PTEs get), so scattered
 * mirrors allocate no RLE storage at all.
 */

#ifndef UPM_VM_GPU_PAGE_TABLE_HH
#define UPM_VM_GPU_PAGE_TABLE_HH

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "vm/page_table.hh"

namespace upm::vm {

/** GPU PTE: translation plus the fragment field. */
struct GpuPte
{
    FrameId frame = 0;
    PteFlags flags;
    std::uint8_t fragment = 0;  //!< log2(pages) of the covering block
};

/** A fragment descriptor returned to TLB fill logic. */
struct Fragment
{
    Vpn base = 0;
    std::uint64_t span = 1;  //!< pages
};

/**
 * An extent of GPU-mapped pages. Strided (scatter null, page vpn+i ->
 * frame+i) or scatter (scatter[i] gives page vpn+i's frame). The
 * scatter pointer aliases table storage and is valid only until the
 * next table mutation.
 */
struct GpuPteRun
{
    Vpn vpn = 0;
    std::uint64_t len = 0;
    FrameId frame = 0;
    PteFlags flags;
    const FrameId *scatter = nullptr;

    Vpn end() const { return vpn + len; }

    FrameId
    frameOf(Vpn v) const
    {
        return scatter != nullptr ? scatter[v - vpn] : frame + (v - vpn);
    }
};

/**
 * GPU page table. PTEs are inserted by the HMM mirror (or directly by
 * the up-front allocators); `recomputeFragments` runs the driver's
 * opportunistic scan over a window after every batch of inserts.
 */
class GpuPageTable
{
  public:
    /** Largest fragment the PTE encoding supports (2^31 pages). */
    static constexpr unsigned kMaxFragment = 31;

    /** Map @p vpn (no fragment yet). Panics if present. */
    void
    insert(Vpn vpn, FrameId frame, PteFlags flags = {})
    {
        insertRange(vpn, 1, frame, flags);
    }

    /**
     * Map [vpn, vpn+len) to frames [frame, frame+len) with fragment 0
     * (unstamped), merging with contiguous same-flag strided
     * neighbours. Panics if any page is present.
     */
    void insertRange(Vpn vpn, std::uint64_t len, FrameId frame,
                     PteFlags flags = {});

    /**
     * Map page vpn+i to frames[i] for i in [0, n) as one run with
     * fragment 0. A frame-contiguous batch degenerates to a strided
     * run. Panics if any page is present.
     */
    void insertFrames(Vpn vpn, const FrameId *frames, std::uint64_t n,
                      PteFlags flags = {});

    std::optional<GpuPte> lookup(Vpn vpn) const;

    /** @return the extent containing @p vpn, if present. */
    std::optional<GpuPteRun> lookupRun(Vpn vpn) const;

    bool present(Vpn vpn) const { return findRun(vpn) != runs.end(); }

    /** Unmap; @return true if it was mapped. */
    bool remove(Vpn vpn);

    /** Unmap every present page in [begin, end). @return removed. */
    std::uint64_t removeRange(Vpn begin, Vpn end);

    std::uint64_t presentCount() const { return presentPages; }

    /** Number of stored runs (diagnostics / tests). */
    std::uint64_t runCount() const { return runs.size(); }

    /** Present pages within [begin, end). O(log runs + runs hit). */
    std::uint64_t presentInRange(Vpn begin, Vpn end) const;

    /**
     * Driver fragment scan over [begin, end): find maximal stretches
     * that are virtually contiguous, physically contiguous, and share
     * flags — detected from per-page frame *values*, independent of
     * how runs are stored — split each stretch into naturally-aligned
     * power-of-two blocks (alignment limited by both the virtual and
     * physical base) and stamp every PTE with its block's log2 size.
     * Pages outside the window keep their previous stamps, exactly as
     * the driver only rewrites the PTE range of the current map
     * operation.
     */
    void recomputeFragments(Vpn begin, Vpn end);

    /**
     * Fragment containing @p vpn, for UTCL1 fills. Requires presence.
     */
    Fragment fragmentOf(Vpn vpn) const;

    /**
     * Span histogram over [begin, end): pages covered per fragment
     * log2-size. Used by tests and the TLB-miss analysis.
     */
    std::vector<std::uint64_t> fragmentHistogram(Vpn begin, Vpn end) const;

    /** Visit present entries in [begin, end) in vpn order. */
    template <typename Fn>
    void
    forRange(Vpn begin, Vpn end, Fn &&fn) const
    {
        forEachFragSeg(begin, end,
                       [&](const RunMap::value_type &node, Vpn seg_begin,
                           Vpn seg_end, std::uint8_t frag) {
                           const Run &run = node.second;
                           GpuPte pte{0, run.flags, frag};
                           for (Vpn vpn = seg_begin; vpn < seg_end;
                                ++vpn) {
                               pte.frame =
                                   run.scatter.empty()
                                       ? run.frame + (vpn - node.first)
                                       : run.scatter[vpn - node.first];
                               fn(vpn, pte);
                           }
                       });
    }

    /**
     * Visit runs overlapping [begin, end) in vpn order, clipped to the
     * window. @param fn callable (const GpuPteRun &); the run's
     * scatter pointer is valid only while the table is unmodified.
     */
    template <typename Fn>
    void
    forEachRun(Vpn begin, Vpn end, Fn &&fn) const
    {
        if (begin >= end)
            return;
        auto it = runs.upper_bound(begin);
        if (it != runs.begin()) {
            --it;
            if (begin >= it->first + it->second.len)
                ++it;
        }
        for (; it != runs.end() && it->first < end; ++it) {
            Vpn clip_begin = std::max(begin, it->first);
            Vpn clip_end = std::min(end, it->first + it->second.len);
            fn(GpuPteRun{clip_begin, clip_end - clip_begin,
                         frameAt(it, clip_begin), it->second.flags,
                         it->second.scatter.empty()
                             ? nullptr
                             : it->second.scatter.data() +
                                   (clip_begin - it->first)});
        }
    }

    /**
     * Visit the *unmapped* gaps of [begin, end) in vpn order.
     * @param fn callable (Vpn gap_begin, Vpn gap_end).
     */
    template <typename Fn>
    void
    forEachGap(Vpn begin, Vpn end, Fn &&fn) const
    {
        Vpn cursor = begin;
        forEachRun(begin, end, [&](const GpuPteRun &run) {
            if (cursor < run.vpn)
                fn(cursor, run.vpn);
            cursor = run.end();
        });
        if (cursor < end)
            fn(cursor, end);
    }

    /**
     * Visit same-fragment stretches of mapped pages in [begin, end) in
     * vpn order: the run-length-encoded form of the per-page fragment
     * field. @param fn callable (Vpn seg_begin, uint64 seg_len,
     * uint8 fragment). UTCL1 walkers use this instead of per-page
     * lookups. Segment boundaries are a storage artifact; only the
     * per-page values are meaningful.
     */
    template <typename Fn>
    void
    forEachFragmentRun(Vpn begin, Vpn end, Fn &&fn) const
    {
        forEachFragSeg(begin, end,
                       [&](const RunMap::value_type &, Vpn seg_begin,
                           Vpn seg_end, std::uint8_t frag) {
                           fn(seg_begin, seg_end - seg_begin, frag);
                       });
    }

  private:
    /** One RLE fragment segment, run-relative: pages
     *  [off, off+len) of the run all carry @ref frag. */
    struct FragSeg
    {
        std::uint64_t off = 0;
        std::uint64_t len = 0;
        std::uint8_t frag = 0;
    };

    /**
     * Stored extent. @ref scatter empty means strided. @ref frags
     * tiles [0, len) in ascending order; empty means every page
     * carries fragment 0.
     */
    struct Run
    {
        std::uint64_t len = 0;
        FrameId frame = 0;
        PteFlags flags;
        std::vector<FrameId> scatter;
        std::vector<FragSeg> frags;
    };

    using RunMap = std::map<Vpn, Run>;

    RunMap::const_iterator findRun(Vpn vpn) const;

    /** Frame of page @p vpn, which must lie inside @p it's run. */
    template <typename It>
    static FrameId
    frameAt(It it, Vpn vpn)
    {
        const auto &run = it->second;
        return run.scatter.empty() ? run.frame + (vpn - it->first)
                                   : run.scatter[vpn - it->first];
    }

    /** Expand a lazy all-zero RLE into an explicit segment. */
    static void
    materializeFrags(Run &run)
    {
        if (run.frags.empty())
            run.frags.push_back({0, run.len, 0});
    }

    /** Split @p frags at run-relative @p cut; returns the suffix
     *  (rebased to offset 0) and truncates @p frags to the prefix.
     *  An empty (lazy all-zero) input stays empty on both sides. */
    static std::vector<FragSeg> splitFrags(std::vector<FragSeg> &frags,
                                           std::uint64_t cut);

    /** Visit clipped fragment segments of runs overlapping the window,
     *  with the owning map node:
     *  fn(node, abs_seg_begin, abs_seg_end, frag). */
    template <typename Fn>
    void
    forEachFragSeg(Vpn begin, Vpn end, Fn &&fn) const
    {
        if (begin >= end)
            return;
        auto it = runs.upper_bound(begin);
        if (it != runs.begin()) {
            --it;
            if (begin >= it->first + it->second.len)
                ++it;
        }
        for (; it != runs.end() && it->first < end; ++it) {
            if (it->second.frags.empty()) {
                Vpn seg_begin = it->first;
                Vpn seg_end = it->first + it->second.len;
                fn(*it, std::max(begin, seg_begin),
                   std::min(end, seg_end), std::uint8_t{0});
                continue;
            }
            for (const FragSeg &seg : it->second.frags) {
                Vpn seg_begin = it->first + seg.off;
                Vpn seg_end = seg_begin + seg.len;
                if (seg_end <= begin)
                    continue;
                if (seg_begin >= end)
                    break;
                fn(*it, std::max(begin, seg_begin),
                   std::min(end, seg_end), seg.frag);
            }
        }
    }

    RunMap runs;
    std::uint64_t presentPages = 0;
};

} // namespace upm::vm

#endif // UPM_VM_GPU_PAGE_TABLE_HH

/**
 * @file
 * The GPU page table with AMD's adaptive fragment scheme.
 *
 * Each GPU PTE carries a 5-bit *fragment* field: log2 of the number of
 * pages in a virtually and physically contiguous, identically-flagged,
 * naturally-aligned block containing the page. The amdgpu driver sets
 * it opportunistically by scanning for maximal contiguous ranges when
 * it writes PTEs (see the `amdgpu_vm_pt.c` comment the paper cites).
 * A UTCL1 entry covers a whole fragment, so large fragments multiply
 * TLB reach -- the mechanism behind hipMalloc's bandwidth advantage
 * (paper Sections 4.2/5.3).
 */

#ifndef UPM_VM_GPU_PAGE_TABLE_HH
#define UPM_VM_GPU_PAGE_TABLE_HH

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "vm/page_table.hh"

namespace upm::vm {

/** GPU PTE: translation plus the fragment field. */
struct GpuPte
{
    FrameId frame = 0;
    PteFlags flags;
    std::uint8_t fragment = 0;  //!< log2(pages) of the covering block
};

/** A fragment descriptor returned to TLB fill logic. */
struct Fragment
{
    Vpn base = 0;
    std::uint64_t span = 1;  //!< pages
};

/**
 * GPU page table. PTEs are inserted by the HMM mirror (or directly by
 * the up-front allocators); `recomputeFragments` runs the driver's
 * opportunistic scan over a window after every batch of inserts.
 */
class GpuPageTable
{
  public:
    /** Largest fragment the PTE encoding supports (2^31 pages). */
    static constexpr unsigned kMaxFragment = 31;

    /** Map @p vpn (no fragment yet). Panics if present. */
    void insert(Vpn vpn, FrameId frame, PteFlags flags = {});

    std::optional<GpuPte> lookup(Vpn vpn) const;
    bool present(Vpn vpn) const { return entries.count(vpn) != 0; }

    /** Unmap; @return true if it was mapped. */
    bool remove(Vpn vpn);

    std::uint64_t presentCount() const { return entries.size(); }

    /**
     * Driver fragment scan over [begin, end): find maximal runs that
     * are virtually contiguous, physically contiguous, and share
     * flags; split each run into naturally-aligned power-of-two blocks
     * (alignment limited by both the virtual and physical base) and
     * stamp every PTE with its block's log2 size.
     */
    void recomputeFragments(Vpn begin, Vpn end);

    /**
     * Fragment containing @p vpn, for UTCL1 fills. Requires presence.
     */
    Fragment fragmentOf(Vpn vpn) const;

    /**
     * Span histogram over [begin, end): pages covered per fragment
     * log2-size. Used by tests and the TLB-miss analysis.
     */
    std::vector<std::uint64_t> fragmentHistogram(Vpn begin, Vpn end) const;

    /** Visit present entries in [begin, end) in vpn order. */
    template <typename Fn>
    void
    forRange(Vpn begin, Vpn end, Fn &&fn) const
    {
        for (auto it = entries.lower_bound(begin);
             it != entries.end() && it->first < end; ++it) {
            fn(it->first, it->second);
        }
    }

  private:
    std::map<Vpn, GpuPte> entries;
};

} // namespace upm::vm

#endif // UPM_VM_GPU_PAGE_TABLE_HH

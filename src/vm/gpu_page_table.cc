#include "vm/gpu_page_table.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/units.hh"

namespace upm::vm {

void
GpuPageTable::insert(Vpn vpn, FrameId frame, PteFlags flags)
{
    auto [it, inserted] = entries.emplace(vpn, GpuPte{frame, flags, 0});
    (void)it;
    if (!inserted)
        panic("GPU PTE for vpn 0x%llx already present",
              static_cast<unsigned long long>(vpn));
}

std::optional<GpuPte>
GpuPageTable::lookup(Vpn vpn) const
{
    auto it = entries.find(vpn);
    if (it == entries.end())
        return std::nullopt;
    return it->second;
}

bool
GpuPageTable::remove(Vpn vpn)
{
    return entries.erase(vpn) != 0;
}

namespace {

/** Trailing zero count, saturated for zero input. */
unsigned
tzCount(std::uint64_t x)
{
    if (x == 0)
        return 63;
    unsigned n = 0;
    while ((x & 1) == 0) {
        x >>= 1;
        ++n;
    }
    return n;
}

} // namespace

void
GpuPageTable::recomputeFragments(Vpn begin, Vpn end)
{
    auto it = entries.lower_bound(begin);
    while (it != entries.end() && it->first < end) {
        // Find the maximal contiguous run starting here.
        Vpn run_base = it->first;
        FrameId frame_base = it->second.frame;
        PteFlags flags = it->second.flags;
        auto run_end_it = it;
        Vpn run_len = 0;
        while (run_end_it != entries.end() && run_end_it->first < end &&
               run_end_it->first == run_base + run_len &&
               run_end_it->second.frame == frame_base + run_len &&
               run_end_it->second.flags == flags) {
            ++run_len;
            ++run_end_it;
        }

        // Stamp aligned power-of-two blocks over the run, greedily from
        // the left, exactly as the driver does: the block size at each
        // position is limited by the remaining run length and by the
        // natural alignment of both the virtual and physical address.
        Vpn pos = 0;
        auto stamp_it = it;
        while (pos < run_len) {
            unsigned align = std::min(tzCount(run_base + pos),
                                      tzCount(frame_base + pos));
            unsigned len_log = floorLog2(run_len - pos);
            unsigned frag = std::min({align, len_log, kMaxFragment});
            std::uint64_t block = 1ull << frag;
            for (std::uint64_t i = 0; i < block; ++i, ++stamp_it)
                stamp_it->second.fragment = static_cast<std::uint8_t>(frag);
            pos += block;
        }
        it = run_end_it;
    }
}

Fragment
GpuPageTable::fragmentOf(Vpn vpn) const
{
    auto it = entries.find(vpn);
    if (it == entries.end())
        panic("fragmentOf on absent vpn 0x%llx",
              static_cast<unsigned long long>(vpn));
    std::uint64_t span = 1ull << it->second.fragment;
    return Fragment{vpn & ~(span - 1), span};
}

std::vector<std::uint64_t>
GpuPageTable::fragmentHistogram(Vpn begin, Vpn end) const
{
    std::vector<std::uint64_t> histogram(kMaxFragment + 1, 0);
    forRange(begin, end, [&](Vpn, const GpuPte &pte) {
        ++histogram[pte.fragment];
    });
    return histogram;
}

} // namespace upm::vm

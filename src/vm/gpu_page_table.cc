#include "vm/gpu_page_table.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/units.hh"

namespace upm::vm {

GpuPageTable::RunMap::const_iterator
GpuPageTable::findRun(Vpn vpn) const
{
    auto it = runs.upper_bound(vpn);
    if (it == runs.begin())
        return runs.end();
    --it;
    if (vpn >= it->first + it->second.len)
        return runs.end();
    return it;
}

std::vector<GpuPageTable::FragSeg>
GpuPageTable::splitFrags(std::vector<FragSeg> &frags, std::uint64_t cut)
{
    std::vector<FragSeg> suffix;
    std::size_t keep = 0;
    for (const FragSeg &seg : frags) {
        if (seg.off + seg.len <= cut) {
            ++keep;
            continue;
        }
        if (seg.off < cut) {
            suffix.push_back(
                {0, seg.off + seg.len - cut, seg.frag});
        } else {
            suffix.push_back({seg.off - cut, seg.len, seg.frag});
        }
    }
    if (keep < frags.size() && frags[keep].off < cut) {
        frags[keep].len = cut - frags[keep].off;
        ++keep;
    }
    frags.resize(keep);
    return suffix;
}

void
GpuPageTable::insertRange(Vpn vpn, std::uint64_t len, FrameId frame,
                          PteFlags flags)
{
    if (len == 0)
        return;
    auto next = runs.lower_bound(vpn);
    auto prev = next;
    bool merge_prev = false;
    if (prev != runs.begin()) {
        --prev;
        if (vpn < prev->first + prev->second.len)
            panic("GPU PTE for vpn 0x%llx already present",
                  static_cast<unsigned long long>(vpn));
        merge_prev = prev->second.scatter.empty() &&
                     prev->first + prev->second.len == vpn &&
                     prev->second.frame + prev->second.len == frame &&
                     prev->second.flags == flags;
    }
    if (next != runs.end() && next->first < vpn + len)
        panic("GPU PTE for vpn 0x%llx already present",
              static_cast<unsigned long long>(next->first));
    bool merge_next = next != runs.end() &&
                      next->second.scatter.empty() &&
                      next->first == vpn + len &&
                      next->second.frame == frame + len &&
                      next->second.flags == flags;

    if (merge_prev) {
        Run &run = prev->second;
        if (!run.frags.empty())
            run.frags.push_back({run.len, len, 0});
        run.len += len;
        if (merge_next) {
            if (!next->second.frags.empty())
                materializeFrags(run);
            if (!run.frags.empty()) {
                materializeFrags(next->second);
                for (const FragSeg &seg : next->second.frags)
                    run.frags.push_back(
                        {seg.off + run.len, seg.len, seg.frag});
            }
            run.len += next->second.len;
            runs.erase(next);
        }
    } else if (merge_next) {
        Run run;
        run.len = len + next->second.len;
        run.frame = frame;
        run.flags = flags;
        if (!next->second.frags.empty()) {
            run.frags.reserve(next->second.frags.size() + 1);
            run.frags.push_back({0, len, 0});
            for (const FragSeg &seg : next->second.frags)
                run.frags.push_back({seg.off + len, seg.len, seg.frag});
        }
        runs.erase(next);
        runs.emplace(vpn, std::move(run));
    } else {
        Run run;
        run.len = len;
        run.frame = frame;
        run.flags = flags;
        runs.emplace_hint(next, vpn, std::move(run));
    }
    presentPages += len;
}

void
GpuPageTable::insertFrames(Vpn vpn, const FrameId *frames,
                           std::uint64_t n, PteFlags flags)
{
    if (n == 0)
        return;
    bool strided = true;
    for (std::uint64_t i = 1; strided && i < n; ++i)
        strided = frames[i] == frames[0] + i;
    if (strided) {
        insertRange(vpn, n, frames[0], flags);
        return;
    }

    auto next = runs.lower_bound(vpn);
    if (next != runs.begin()) {
        auto prev = std::prev(next);
        if (vpn < prev->first + prev->second.len)
            panic("GPU PTE for vpn 0x%llx already present",
                  static_cast<unsigned long long>(vpn));
    }
    if (next != runs.end() && next->first < vpn + n)
        panic("GPU PTE for vpn 0x%llx already present",
              static_cast<unsigned long long>(next->first));

    Run run;
    run.len = n;
    run.frame = frames[0];
    run.flags = flags;
    run.scatter.assign(frames, frames + n);
    runs.emplace_hint(next, vpn, std::move(run));
    presentPages += n;
}

std::optional<GpuPte>
GpuPageTable::lookup(Vpn vpn) const
{
    auto it = findRun(vpn);
    if (it == runs.end())
        return std::nullopt;
    std::uint64_t off = vpn - it->first;
    std::uint8_t frag = 0;
    if (!it->second.frags.empty()) {
        auto seg = std::upper_bound(
            it->second.frags.begin(), it->second.frags.end(), off,
            [](std::uint64_t o, const FragSeg &s) { return o < s.off; });
        --seg;
        frag = seg->frag;
    }
    return GpuPte{frameAt(it, vpn), it->second.flags, frag};
}

std::optional<GpuPteRun>
GpuPageTable::lookupRun(Vpn vpn) const
{
    auto it = findRun(vpn);
    if (it == runs.end())
        return std::nullopt;
    return GpuPteRun{it->first, it->second.len, it->second.frame,
                     it->second.flags,
                     it->second.scatter.empty()
                         ? nullptr
                         : it->second.scatter.data()};
}

bool
GpuPageTable::remove(Vpn vpn)
{
    return removeRange(vpn, vpn + 1) != 0;
}

std::uint64_t
GpuPageTable::removeRange(Vpn begin, Vpn end)
{
    std::uint64_t removed = 0;
    if (begin >= end)
        return removed;
    auto it = runs.upper_bound(begin);
    if (it != runs.begin()) {
        --it;
        if (begin >= it->first + it->second.len)
            ++it;
    }
    while (it != runs.end() && it->first < end) {
        Vpn run_vpn = it->first;
        Run run = std::move(it->second);
        Vpn cut_begin = std::max(begin, run_vpn);
        Vpn cut_end = std::min(end, run_vpn + run.len);
        it = runs.erase(it);
        if (cut_end < run_vpn + run.len) {
            Run tail;
            tail.len = run_vpn + run.len - cut_end;
            tail.flags = run.flags;
            if (run.scatter.empty()) {
                tail.frame = run.frame + (cut_end - run_vpn);
            } else {
                tail.scatter.assign(
                    run.scatter.begin() + (cut_end - run_vpn),
                    run.scatter.end());
                tail.frame = tail.scatter.front();
            }
            tail.frags = splitFrags(run.frags, cut_end - run_vpn);
            it = runs.emplace_hint(it, cut_end, std::move(tail));
        }
        if (run_vpn < cut_begin) {
            Run head;
            head.len = cut_begin - run_vpn;
            head.frame = run.frame;
            head.flags = run.flags;
            if (!run.scatter.empty()) {
                run.scatter.resize(head.len);
                head.scatter = std::move(run.scatter);
            }
            splitFrags(run.frags, cut_begin - run_vpn);
            head.frags = std::move(run.frags);
            runs.emplace(run_vpn, std::move(head));
        }
        removed += cut_end - cut_begin;
    }
    presentPages -= removed;
    return removed;
}

namespace {

/** Trailing zero count, saturated for zero input. */
unsigned
tzCount(std::uint64_t x)
{
    if (x == 0)
        return 63;
    unsigned n = 0;
    while ((x & 1) == 0) {
        x >>= 1;
        ++n;
    }
    return n;
}

} // namespace

void
GpuPageTable::recomputeFragments(Vpn begin, Vpn end)
{
    if (begin >= end)
        return;

    // Phase 1: find the driver's contiguity stretches inside the
    // window from per-page *values* — maximal sequences of present
    // pages with consecutive frames and equal flags — so the result
    // does not depend on how the mapping is split into stored runs.
    // Greedily stamp each stretch with naturally-aligned power-of-two
    // blocks; stamps are page-absolute and RLE-compressed.
    struct Stamp
    {
        Vpn begin;
        std::uint64_t len;
        std::uint8_t frag;
    };
    std::vector<Stamp> stamps;
    auto stampStretch = [&](Vpn s, Vpn e, FrameId frame0) {
        Vpn v = s;
        while (v < e) {
            unsigned align =
                std::min(tzCount(v), tzCount(frame0 + (v - s)));
            unsigned len_log = floorLog2(e - v);
            unsigned frag = std::min({align, len_log, kMaxFragment});
            std::uint64_t block = 1ull << frag;
            if (!stamps.empty() &&
                stamps.back().frag == static_cast<std::uint8_t>(frag) &&
                stamps.back().begin + stamps.back().len == v) {
                stamps.back().len += block;
            } else {
                stamps.push_back(
                    {v, block, static_cast<std::uint8_t>(frag)});
            }
            v += block;
        }
    };

    bool open = false;
    Vpn s_begin = 0, s_end = 0;
    FrameId s_frame = 0;
    PteFlags s_flags;
    forEachRun(begin, end, [&](const GpuPteRun &part) {
        Vpn p = part.vpn;
        while (p < part.end()) {
            // Maximal internally frame-contiguous piece of the part.
            FrameId f0 = part.frameOf(p);
            Vpn piece_end;
            if (part.scatter == nullptr) {
                piece_end = part.end();
            } else {
                piece_end = p + 1;
                while (piece_end < part.end() &&
                       part.scatter[piece_end - part.vpn] ==
                           f0 + (piece_end - p))
                    ++piece_end;
            }
            if (open && p == s_end &&
                f0 == s_frame + (s_end - s_begin) &&
                part.flags == s_flags) {
                s_end = piece_end;
            } else {
                if (open)
                    stampStretch(s_begin, s_end, s_frame);
                s_begin = p;
                s_end = piece_end;
                s_frame = f0;
                s_flags = part.flags;
                open = true;
            }
            p = piece_end;
        }
    });
    if (open)
        stampStretch(s_begin, s_end, s_frame);

    // Phase 2: splice the stamps into each overlapped run's RLE. When
    // a run's current per-page values already equal the stamps (the
    // common case for scattered fault batches, where every fragment is
    // and stays 0), skip the splice and keep the lazy representation.
    std::size_t si = 0;
    auto it = runs.upper_bound(begin);
    if (it != runs.begin()) {
        --it;
        if (begin >= it->first + it->second.len)
            ++it;
    }
    for (; it != runs.end() && it->first < end; ++it) {
        Run &run = it->second;
        Vpn wb = std::max(begin, it->first);
        Vpn we = std::min(end, it->first + run.len);
        if (wb >= we)
            continue;
        while (si < stamps.size() &&
               stamps[si].begin + stamps[si].len <= wb)
            ++si;

        bool same = true;
        std::size_t sj = si;
        auto checkSpan = [&](Vpn cb, Vpn ce, std::uint8_t cur) {
            while (same && cb < ce) {
                while (sj < stamps.size() &&
                       stamps[sj].begin + stamps[sj].len <= cb)
                    ++sj;
                if (sj >= stamps.size() || stamps[sj].begin > cb ||
                    stamps[sj].frag != cur) {
                    same = false;
                    return;
                }
                cb = std::min<Vpn>(ce,
                                   stamps[sj].begin + stamps[sj].len);
            }
        };
        if (run.frags.empty()) {
            checkSpan(wb, we, 0);
        } else {
            for (const FragSeg &seg : run.frags) {
                Vpn sb = it->first + seg.off;
                Vpn se = sb + seg.len;
                if (se <= wb)
                    continue;
                if (sb >= we || !same)
                    break;
                checkSpan(std::max(wb, sb), std::min(we, se), seg.frag);
            }
        }
        if (same)
            continue;

        materializeFrags(run);
        auto suffix = splitFrags(run.frags, we - it->first);
        splitFrags(run.frags, wb - it->first);
        for (std::size_t sk = si;
             sk < stamps.size() && stamps[sk].begin < we; ++sk) {
            Vpn sb = std::max<Vpn>(stamps[sk].begin, wb);
            Vpn se =
                std::min<Vpn>(stamps[sk].begin + stamps[sk].len, we);
            if (sb >= se)
                continue;
            run.frags.push_back(
                {sb - it->first, se - sb, stamps[sk].frag});
        }
        std::size_t suffix_at = run.frags.size();
        run.frags.insert(run.frags.end(), suffix.begin(), suffix.end());
        for (std::size_t i = suffix_at; i < run.frags.size(); ++i)
            run.frags[i].off += we - it->first;

        bool all_zero = true;
        for (const FragSeg &seg : run.frags)
            all_zero = all_zero && seg.frag == 0;
        if (all_zero)
            run.frags.clear();
    }
}

Fragment
GpuPageTable::fragmentOf(Vpn vpn) const
{
    auto pte = lookup(vpn);
    if (!pte)
        panic("fragmentOf on absent vpn 0x%llx",
              static_cast<unsigned long long>(vpn));
    std::uint64_t span = 1ull << pte->fragment;
    return Fragment{vpn & ~(span - 1), span};
}

std::vector<std::uint64_t>
GpuPageTable::fragmentHistogram(Vpn begin, Vpn end) const
{
    std::vector<std::uint64_t> histogram(kMaxFragment + 1, 0);
    forEachFragmentRun(begin, end,
                       [&](Vpn, std::uint64_t len, std::uint8_t frag) {
                           histogram[frag] += len;
                       });
    return histogram;
}

std::uint64_t
GpuPageTable::presentInRange(Vpn begin, Vpn end) const
{
    std::uint64_t n = 0;
    forEachRun(begin, end,
               [&](const GpuPteRun &run) { n += run.len; });
    return n;
}

} // namespace upm::vm

#include "vm/fault_handler.hh"

#include <cmath>

#include "common/log.hh"
#include "fabric/fabric.hh"
#include "inject/injector.hh"
#include "trace/tracer.hh"

namespace upm::vm {

FaultHandler::FaultHandler(const FaultCosts &costs, std::uint64_t seed)
    : cost(costs), rng(seed)
{
}

SimTime
FaultHandler::lognormal(SimTime median, double sigma)
{
    // Box-Muller on two uniform draws.
    double u1 = rng.nextDouble();
    double u2 = rng.nextDouble();
    if (u1 < 1e-12)
        u1 = 1e-12;
    double z = std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * M_PI * u2);
    return median * std::exp(sigma * z);
}

SimTime
FaultHandler::sampleColdLatency(FaultType type, unsigned hops)
{
    SimTime latency;
    switch (type) {
      case FaultType::Cpu:
        latency = lognormal(cost.cpuCold, cost.cpuSigma);
        break;
      case FaultType::GpuMinor:
        latency = lognormal(cost.gpuMinorCold, cost.gpuSigma);
        break;
      case FaultType::GpuMajor:
        latency = lognormal(cost.gpuMajorCold, cost.gpuSigma);
        break;
      default:
        panic("unknown fault type");
    }
    // A remote fault's allocation + PTE propagation crosses the xGMI
    // fabric; the cold path pays the full round trip, undiluted.
    if (fab != nullptr && hops > 0)
        latency += fab->remoteFaultCost(hops);
    if (tr != nullptr) {
        tr->emit(trace::EventKind::ColdFault,
                 static_cast<std::uint64_t>(type), 0, 0, 0, 0, latency);
    }
    return latency;
}

SimTime
FaultHandler::serviceTime(FaultType type, std::uint64_t pages,
                          unsigned cpu_cores, unsigned hops) const
{
    if (pages == 0)
        return 0.0;
    double n = static_cast<double>(pages);

    SimTime steady;
    double ramp;
    switch (type) {
      case FaultType::Cpu:
        steady = cost.cpuSteady;
        ramp = cost.cpuRamp;
        break;
      case FaultType::GpuMinor:
        steady = cost.gpuMinorSteady;
        ramp = cost.gpuMinorRamp;
        break;
      case FaultType::GpuMajor:
      default:
        steady = cost.gpuMajorSteady;
        ramp = cost.gpuMajorRamp;
        break;
    }

    // Batch ramp: per-page cost shrinks toward `steady` as the handler
    // pipeline warms and HMM walks batch up.
    SimTime per_page = steady * (1.0 + ramp / std::sqrt(n));

    if (type == FaultType::Cpu && cpu_cores > 1) {
        double speedup = static_cast<double>(cpu_cores) /
                         (1.0 + cost.cpuContentionAlpha *
                                    static_cast<double>(cpu_cores - 1));
        per_page /= speedup;
    }
    if (fab != nullptr && hops > 0) {
        // Steady-state remote faults pipeline their PTE propagation
        // over the fabric, so each page pays the link latency (not the
        // full round trip), plus one pipeline-entry round trip per
        // batch. hops == 0 leaves the local arithmetic untouched.
        per_page += fab->latencyForHops(hops, 0.5);
        return per_page * n + fab->remoteFaultCost(hops);
    }
    return per_page * n;
}

FaultService
FaultHandler::service(FaultType type, std::uint64_t pages,
                      unsigned cpu_cores, unsigned hops)
{
    FaultService result;
    SimTime base = serviceTime(type, pages, cpu_cores, hops);
    auto emit_service = [&](const FaultService &r) {
        ++serviceTally.calls;
        serviceTally.pages += pages;
        serviceTally.timeNs += r.time;
        if (tr != nullptr) {
            tr->emit(trace::EventKind::FaultService,
                     static_cast<std::uint64_t>(type), pages, r.retries,
                     r.replays, static_cast<std::uint64_t>(r.status),
                     r.time);
        }
        return r;
    };
    // The common case must stay bit-identical to serviceTime(): the
    // byte-identical-baselines guarantee rests on this early return.
    if (inj == nullptr) {
        result.time = base;
        return emit_service(result);
    }

    SimTime attempt = base;
    if (type != FaultType::Cpu) {
        // GPU faults ride the HMM worker + XNACK replay pipeline; CPU
        // faults resolve synchronously in the trap handler and only
        // share the frame-allocation site.
        unsigned storm = inj->xnackReplayStorm(pages);
        result.replays = storm;
        attempt += static_cast<SimTime>(storm) * base;
        attempt *= inj->hmmDelayFactor();

        while (inj->dropHmmCompletion()) {
            if (result.retries == cost.maxRetries) {
                result.status = Status::Timeout;
                result.time = attempt;
                return emit_service(result);
            }
            ++result.retries;
            attempt += cost.retryBackoff *
                       std::pow(cost.retryBackoffGrowth,
                                static_cast<double>(result.retries - 1));
            // The re-sent fault pays the service pipeline again.
            attempt += base;
        }
    }
    result.time = attempt;
    return emit_service(result);
}

double
FaultHandler::throughput(FaultType type, std::uint64_t pages,
                         unsigned cpu_cores, unsigned hops) const
{
    SimTime total = serviceTime(type, pages, cpu_cores, hops);
    if (total <= 0.0)
        return 0.0;
    return static_cast<double>(pages) / total * 1e9;  // pages per second
}

} // namespace upm::vm

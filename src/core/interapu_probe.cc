#include "core/interapu_probe.hh"

namespace upm::core {

hip::DevPtr
InterApuProbe::populateRegion()
{
    // Up-front allocator: placement happens at mmap time through the
    // VMA's socket policy (the interleave rotation and read-only
    // replication only engage on the populate path -- an on-demand
    // region resolved by one big fault batch lands on one shard).
    return sys.runtime().allocate(alloc::AllocatorKind::HipHostMalloc,
                                  cfg.regionBytes);
}

InterApuPairResult
InterApuProbe::measurePair(unsigned access_socket, unsigned home_socket)
{
    vm::AddressSpace &as = sys.addressSpace();
    alloc::AllocatorRegistry &reg = sys.allocators();

    // Snapshot the policy state so a probe sweep leaves the system the
    // way it found it.
    vm::SocketPolicy prev_policy = as.defaultSocketPolicy();
    unsigned prev_home = as.defaultHomeSocket();
    unsigned prev_socket = as.currentSocket();

    reg.setSocketPlacement(vm::SocketPolicy::Home, home_socket);
    as.setCurrentSocket(access_socket);
    hip::DevPtr ptr = populateRegion();

    hip::PerfModel &perf = sys.runtime().perf();
    hip::RegionProfile profile =
        perf.profileRegion(as, ptr, cfg.regionBytes);

    InterApuPairResult result;
    result.accessSocket = access_socket;
    result.homeSocket = home_socket;
    result.remoteFraction = profile.remoteFraction;
    result.gpuBandwidth = perf.gpuStreamBandwidth(profile);
    result.cpuBandwidth =
        perf.cpuStreamBandwidth(profile, cfg.cpuThreads);
    result.gpuLatency = perf.gpuChaseLatency(profile);
    result.cpuLatency = perf.cpuChaseLatency(profile);

    const fabric::Fabric *fab = sys.fabric();
    if (fab != nullptr && access_socket != home_socket) {
        result.hops = fab->hopDistance(access_socket, home_socket);
        result.farDirection =
            fab->farDirection(access_socket, home_socket);
    }
    result.faultServiceTime = sys.faultHandler().serviceTime(
        vm::FaultType::GpuMajor, cfg.faultBatchPages, 1, result.hops);

    sys.runtime().freeChecked(ptr);
    reg.setSocketPlacement(prev_policy, prev_home);
    as.setCurrentSocket(prev_socket);
    return result;
}

InterApuPlacementResult
InterApuProbe::measurePlacement(vm::SocketPolicy policy,
                                unsigned access_socket)
{
    vm::AddressSpace &as = sys.addressSpace();
    alloc::AllocatorRegistry &reg = sys.allocators();

    vm::SocketPolicy prev_policy = as.defaultSocketPolicy();
    unsigned prev_home = as.defaultHomeSocket();
    unsigned prev_socket = as.currentSocket();

    // Home-style policies anchor at socket 0 so the remote mix a
    // non-zero access socket sees is the interesting one.
    reg.setSocketPlacement(policy, 0);
    as.setCurrentSocket(access_socket);
    hip::DevPtr ptr = populateRegion();

    hip::PerfModel &perf = sys.runtime().perf();
    hip::RegionProfile profile =
        perf.profileRegion(as, ptr, cfg.regionBytes);

    InterApuPlacementResult result;
    result.policy = policy;
    result.remoteFraction = profile.remoteFraction;
    result.gpuBandwidth = perf.gpuStreamBandwidth(profile);
    result.gpuLatency = perf.gpuChaseLatency(profile);

    sys.runtime().freeChecked(ptr);
    reg.setSocketPlacement(prev_policy, prev_home);
    as.setCurrentSocket(prev_socket);
    return result;
}

} // namespace upm::core

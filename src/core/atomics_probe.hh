/**
 * @file
 * Coherence-overhead probe: the parallel-histogram atomics benchmark
 * (paper Section 3.1 "Coherence Overhead", results Fig. 4 and Fig. 5).
 *
 * CPU threads draw uniform indices with minstd and issue
 * __atomic_fetch_add; GPU threads draw with XORWOW and issue
 * atomicAdd_system, executed at the L2 atomic units. Throughput is
 * estimated with a damped fixed-point model whose microscopic costs
 * come from the coherence directory (ownership transfers), the atomic
 * unit array (per-line serialization), and the AtomicsCalib workload
 * constants. FP64 on the CPU runs a CAS loop (x86 has no native FP
 * atomic), so collisions cause retries; the GPU has native FP64
 * atomics and shows no FP64/UINT64 difference.
 */

#ifndef UPM_CORE_ATOMICS_PROBE_HH
#define UPM_CORE_ATOMICS_PROBE_HH

#include <cstdint>
#include <vector>

#include "core/system.hh"

namespace upm::core {

/** Element type of the histogram array. */
enum class AtomicType : std::uint8_t { Uint64, Fp64 };

/** Co-run result, normalized like the paper's Fig. 5. */
struct HybridAtomicsResult
{
    double cpuOpsPerNs = 0.0;
    double gpuOpsPerNs = 0.0;
    double cpuRelative = 1.0;  //!< vs isolated CPU at same threads
    double gpuRelative = 1.0;  //!< vs isolated GPU at same threads
};

/** Atomics throughput prober. */
class AtomicsProbe
{
  public:
    explicit AtomicsProbe(System &system)
        : cal(system.config().atomicsModel),
          coh(system.config().coherence),
          unit(system.config().atomics)
    {}

    /** Isolated CPU histogram throughput, ops/ns. */
    double cpuThroughput(std::uint64_t elems, unsigned threads,
                         AtomicType type) const;

    /** Isolated GPU histogram throughput, ops/ns. */
    double gpuThroughput(std::uint64_t elems, unsigned gpu_threads,
                         AtomicType type) const;

    /** Co-running CPU and GPU kernels on the same array. */
    HybridAtomicsResult hybrid(std::uint64_t elems, unsigned cpu_threads,
                               unsigned gpu_threads,
                               AtomicType type) const;

    /**
     * Fig. 4 grid: isolated throughput for every (array size, thread
     * count) cell, fanned out over the worker pool. The probe holds
     * only immutable calibration, so cells are independent and the
     * grid is bit-identical at any worker count.
     * @return result[size index][thread index].
     */
    std::vector<std::vector<double>> throughputGrid(
        bool gpu_side, const std::vector<std::uint64_t> &elem_counts,
        const std::vector<unsigned> &thread_counts, AtomicType type) const;

    /**
     * Fig. 5 grid: hybrid results for every (CPU threads, GPU threads)
     * cell on one array, fanned out over the worker pool.
     * @return result[cpu index][gpu index].
     */
    std::vector<std::vector<HybridAtomicsResult>> hybridGrid(
        std::uint64_t elems, const std::vector<unsigned> &cpu_counts,
        const std::vector<unsigned> &gpu_counts, AtomicType type) const;

  private:
    /** One damped fixed-point solve; either rate may be zero. */
    void solve(std::uint64_t elems, unsigned cpu_threads,
               unsigned gpu_threads, AtomicType type, double &cpu_rate,
               double &gpu_rate) const;

    /** CPU per-op cost given the environment rates. */
    double cpuOpCost(std::uint64_t elems, unsigned threads,
                     AtomicType type, double cpu_rate,
                     double gpu_rate) const;

    /** GPU per-op cost and caps given the environment rates. */
    double gpuRate(std::uint64_t elems, unsigned gpu_threads,
                   double cpu_rate, double gpu_rate_prev) const;

    core::AtomicsCalib cal;
    cache::CoherenceCosts coh;
    cache::AtomicUnitModel unit;
};

} // namespace upm::core

#endif // UPM_CORE_ATOMICS_PROBE_HH

#include "core/histogram_engine.hh"

#include <algorithm>

#include "cache/atomic_unit.hh"
#include "cache/directory.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "sched/time_heap.hh"

namespace upm::core {

HistogramResult
HistogramEngine::run(const HistogramParams &params)
{
    if (params.elems == 0)
        fatal("histogram needs at least one element");
    if (params.cpuThreads == 0 && params.gpuThreads == 0)
        fatal("histogram needs at least one thread");

    auto &rt = sys.runtime();
    const auto &cal = sys.config().atomicsModel;
    cache::Directory directory(sys.config().coherence);
    directory.setAuditor(sys.auditor());
    cache::AtomicUnitModel unit(sys.config().atomics);

    // The functional histogram lives in a unified allocation.
    hip::DevPtr buf = rt.hipMalloc(params.elems * sizeof(std::uint64_t));
    auto *histogram =
        rt.hostPtr<std::uint64_t>(buf, params.elems);
    std::fill(histogram, histogram + params.elems, 0);

    struct Agent
    {
        bool gpu;
        SimTime clock = 0.0;
        MinStdRand cpu_rng{1};
        Xorwow gpu_rng{1};
        unsigned ops_done = 0;
    };

    std::vector<Agent> agents;
    agents.reserve(params.cpuThreads + params.gpuThreads);
    for (unsigned t = 0; t < params.cpuThreads; ++t) {
        Agent agent;
        agent.gpu = false;
        agent.cpu_rng = MinStdRand(static_cast<std::uint32_t>(
            params.seed * 2654435761ull + t + 1));
        agents.push_back(agent);
    }
    for (unsigned t = 0; t < params.gpuThreads; ++t) {
        Agent agent;
        agent.gpu = true;
        agent.gpu_rng = Xorwow(params.seed * 11400714819323198485ull +
                               t + 1);
        agents.push_back(agent);
    }

    // Per-line availability timestamps enforce atomic serialization.
    // A dense vector keyed by line id: deterministic by construction
    // (the unordered map it replaces kept SimTime behind hashed keys,
    // the pattern the determinism contract bans from sim layers).
    std::uint64_t last_line =
        (params.elems * sizeof(std::uint64_t) - 1) / 64;
    std::vector<SimTime> line_free_at(last_line + 1, 0.0);
    HistogramResult result;

    // One atomic update by @p agent: draw an index, bump the
    // functional histogram, pay work + ownership transfer + line
    // serialization. Unowned lines of a cache-resident histogram come
    // from the shared level, not from memory (the directory prices the
    // worst case).
    auto step = [&](Agent &agent) {
        std::uint64_t idx =
            agent.gpu
                ? agent.gpu_rng.nextBelow(params.elems)
                : agent.cpu_rng.nextBelow(
                      static_cast<std::uint32_t>(std::min<std::uint64_t>(
                          params.elems, 0xffffffffull)));
        ++histogram[idx];
        std::uint64_t line = idx * sizeof(std::uint64_t) / 64;

        bool was_unowned =
            directory.ownerOf(line) == cache::Owner::None;
        SimTime work = agent.gpu ? cal.gpuOpLatencyL2 * 0.02
                                 : cal.cpuWork;
        SimTime xfer = agent.gpu
                           ? directory.gpuAtomic(line)
                           : directory.cpuAtomic(
                                 line, static_cast<unsigned>(
                                           &agent - agents.data()) %
                                           sys.config().numCpuCores);
        if (!agent.gpu && was_unowned &&
            params.elems * sizeof(std::uint64_t) <= cal.cpuAggL2Bytes) {
            xfer = cal.cpuCleanNear;
        }
        if (!agent.gpu && params.type == AtomicType::Fp64)
            xfer *= cal.casFactor;

        SimTime service = agent.gpu ? unit.lineServiceTime()
                                    : cal.cpuLineService;
        SimTime start = agent.clock + work;
        if (line_free_at[line] > start) {
            ++result.lineConflicts;
            start = line_free_at[line];
        }
        SimTime done = start + xfer;
        line_free_at[line] = done + service;
        agent.clock = done;
        ++agent.ops_done;
    };

    std::uint64_t remaining = static_cast<std::uint64_t>(agents.size()) *
                              params.opsPerThread;
    result.totalOps = remaining;
    if (params.impl == HistogramImpl::Scan) {
        // Reference loop: pick the least-advanced runnable agent each
        // step by linear scan (lowest index among same-clock ties).
        while (remaining > 0) {
            Agent *next = nullptr;
            for (auto &agent : agents) {
                if (agent.ops_done >= params.opsPerThread)
                    continue;
                if (next == nullptr || agent.clock < next->clock)
                    next = &agent;
            }
            step(*next);
            --remaining;
        }
    } else {
        // Event-calendar loop: the same total order out of a TimeHeap
        // keyed (clock, agent index). Each agent is in the heap at
        // most once, so the (when, key) pair is already unique and the
        // pop sequence reproduces the scan byte for byte in O(log n).
        sched::TimeHeap<std::uint32_t> ready;
        for (std::size_t i = 0; i < agents.size(); ++i) {
            if (params.opsPerThread > 0)
                ready.push(agents[i].clock, i,
                           static_cast<std::uint32_t>(i));
        }
        while (!ready.empty()) {
            auto entry = ready.pop();
            Agent &agent = agents[entry.payload];
            step(agent);
            if (agent.ops_done < params.opsPerThread)
                ready.push(agent.clock, entry.key, entry.payload);
        }
    }

    // Makespan per agent class -> throughput.
    SimTime cpu_makespan = 0.0, gpu_makespan = 0.0;
    std::uint64_t cpu_ops = 0, gpu_ops = 0;
    for (const auto &agent : agents) {
        if (agent.gpu) {
            gpu_makespan = std::max(gpu_makespan, agent.clock);
            gpu_ops += agent.ops_done;
        } else {
            cpu_makespan = std::max(cpu_makespan, agent.clock);
            cpu_ops += agent.ops_done;
        }
    }
    if (cpu_ops > 0 && cpu_makespan > 0.0)
        result.cpuOpsPerNs = static_cast<double>(cpu_ops) / cpu_makespan;
    if (gpu_ops > 0 && gpu_makespan > 0.0)
        result.gpuOpsPerNs = static_cast<double>(gpu_ops) / gpu_makespan;

    for (std::uint64_t i = 0; i < params.elems; ++i)
        result.histogramSum += histogram[i];

    rt.freeChecked(buf);
    return result;
}

} // namespace upm::core

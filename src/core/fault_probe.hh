/**
 * @file
 * Page-fault probe (paper Section 3.1 "Page Fault Overhead", results
 * Fig. 7 throughput and Fig. 8 latency distribution).
 *
 * Latency: mmap a fresh region, issue a single first touch, compare
 * against the pre-faulted baseline -- here directly sampled from the
 * fault handler's cold-latency distribution after functionally
 * resolving the fault.
 *
 * Throughput: fault @p pages concurrently in one of four scenarios
 * (GPU Major, GPU Minor, 1CPU, 12CPU). Regions up to a functional cap
 * are resolved page-by-page through the real VM paths; beyond the cap
 * (page counts exceeding the scaled-down model capacity) the timing
 * model alone is queried, which is exact because service time is
 * independent of *which* frames are taken.
 */

#ifndef UPM_CORE_FAULT_PROBE_HH
#define UPM_CORE_FAULT_PROBE_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "core/system.hh"

namespace upm::core {

/** Fig. 7 scenarios. */
enum class FaultScenario : std::uint8_t {
    GpuMajor,  //!< first touch on GPU
    GpuMinor,  //!< CPU pre-faulted, touch on GPU
    Cpu1,      //!< one faulting core
    Cpu12,     //!< twelve faulting cores
};

const char *faultScenarioName(FaultScenario scenario);

/** Fault prober. */
class FaultProbe
{
  public:
    struct Params
    {
        unsigned timedIterations = 100;
        /** Pages resolved functionally before switching to the pure
         *  timing model (bounded by modelled capacity). */
        std::uint64_t functionalPageCap = 64 * 1024;
        /**
         * Root of the per-iteration latency-jitter seeds: iteration i
         * samples with `exec::taskSeed(rootSeed, i)`, so the Fig. 8
         * distribution is identical at any worker count.
         */
        std::uint64_t rootSeed = 0xfa17u;
        /** Iterations one parallel task resolves (fixed so chunk
         *  boundaries never depend on the worker count). */
        unsigned iterationsPerTask = 16;
    };

    explicit FaultProbe(System &system) : FaultProbe(system, Params()) {}

    FaultProbe(System &system, const Params &params)
        : sys(system), cfg(params)
    {}

    /** Single-fault latency distribution (Fig. 8). */
    SampleStats latencyDistribution(FaultScenario scenario);

    /** Throughput in pages/s for @p pages concurrent faults (Fig. 7). */
    double throughput(FaultScenario scenario, std::uint64_t pages);

    /**
     * Fig. 7 sweep over concurrent-page counts: each point resolves
     * its functional faults on a worker-local System.
     */
    std::vector<double> throughputSweep(
        FaultScenario scenario, const std::vector<std::uint64_t> &pages);

  private:
    /** Functionally fault a small region through the VM paths. */
    void functionalFaults(FaultScenario scenario, std::uint64_t pages);

    System &sys;
    Params cfg;
};

} // namespace upm::core

#endif // UPM_CORE_FAULT_PROBE_HH

/**
 * @file
 * STREAM TRIAD probe (paper Fig. 3, Fig. 9, Fig. 10).
 *
 * GPU side: allocates the three TRIAD arrays, first-touches them from
 * the chosen agent, then (a) reports the modelled streaming bandwidth
 * and (b) *simulates* the per-CU UTCL1 over the kernel's page access
 * sequence using the real fragments in the GPU page table, reporting
 * the `TCP_UTCL1_TRANSLATION_MISS_sum` counter rocprof would show.
 *
 * CPU side: reports bandwidth for a thread sweep and the page-fault
 * count perf would show over the benchmark (Fig. 10).
 */

#ifndef UPM_CORE_STREAM_PROBE_HH
#define UPM_CORE_STREAM_PROBE_HH

#include <cstdint>
#include <vector>

#include "alloc/allocation.hh"
#include "core/latency_probe.hh"
#include "core/system.hh"

namespace upm::core {

/** Result of one GPU TRIAD run. */
struct GpuStreamResult
{
    double bandwidth = 0.0;        //!< bytes/ns (== GB/s)
    std::uint64_t tlbMisses = 0;   //!< UTCL1 translation misses
    std::uint64_t pagesPerArray = 0;
};

/** Result of one CPU TRIAD run. */
struct CpuStreamResult
{
    double bandwidth = 0.0;       //!< bytes/ns at the best thread count
    unsigned bestThreads = 0;
    std::uint64_t pageFaults = 0;  //!< perf page-faults over the run
    std::uint64_t dtlbMisses = 0;
    std::vector<double> perThreadBandwidth;  //!< index 0 == 1 thread
};

/** STREAM-style prober bound to a system. */
class StreamProbe
{
  public:
    /** Parameters mirroring the paper's setup. */
    struct Params
    {
        std::uint64_t gpuArrayBytes = 256 * MiB;
        std::uint64_t cpuArrayBytes = 610 * MiB;
        unsigned iterations = 10;
        /** Iterations covered by the rocprof TLB profile window. */
        unsigned profiledIterations = 3;
        /** CUs simulated in detail; misses scale to the full GPU. */
        unsigned sampledCus = 8;
        /** Bytes per block dispatched to one CU (256 threads x 8 B). */
        std::uint64_t blockBytes = 2048;
    };

    explicit StreamProbe(System &system) : StreamProbe(system, Params()) {}

    StreamProbe(System &system, const Params &params)
        : sys(system), cfg(params)
    {}

    /** GPU TRIAD with the given allocator and first-touch agent. */
    GpuStreamResult gpuTriad(alloc::AllocatorKind kind,
                             FirstTouch first_touch);

    /** CPU TRIAD thread sweep (1..24 threads, best reported). */
    CpuStreamResult cpuTriad(alloc::AllocatorKind kind,
                             FirstTouch first_touch);

    const Params &params() const { return cfg; }

  private:
    struct Arrays
    {
        hip::DevPtr a = 0, b = 0, c = 0;
        std::uint64_t bytes = 0;
    };

    Arrays allocate(alloc::AllocatorKind kind, std::uint64_t bytes,
                    FirstTouch first_touch);
    void release(Arrays &arrays);

    /** Simulate per-CU UTCL1 misses over the TRIAD access sequence. */
    std::uint64_t simulateTlbMisses(const Arrays &arrays);

    /** Process-noise fault floor perf sees on a real node (Fig. 10). */
    static std::uint64_t kResidualProcessFaults(FirstTouch first_touch);

    System &sys;
    Params cfg;
};

} // namespace upm::core

#endif // UPM_CORE_STREAM_PROBE_HH

/**
 * @file
 * The System: one simulated MI300A node running one process.
 *
 * Wires the full stack together -- geometry, per-socket frame-allocator
 * shards, backing store, address space, fault handler, allocator
 * registry, HIP runtime, profiling views -- in dependency order. Every
 * probe, bench, example and workload starts by constructing one of
 * these.
 *
 * A node is one or more sockets (SystemConfig::numSockets). Each
 * socket contributes an Apu topology, one geometry-sized HBM shard,
 * and a NumaMeminfo view; sockets > 1 are joined by the xGMI link
 * model (fabric::Fabric), which the address space (placement routing),
 * fault handler (remote fault cost) and perf model (remote bandwidth
 * mix) all consult. With numSockets == 1 the fabric is never created
 * and the node degenerates to the classic single-APU wiring, byte
 * identical to the pre-socket System.
 */

#ifndef UPM_CORE_SYSTEM_HH
#define UPM_CORE_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "alloc/registry.hh"
#include "audit/auditor.hh"
#include "core/apu.hh"
#include "core/socket.hh"
#include "fabric/fabric.hh"
#include "inject/injector.hh"
#include "core/calibration.hh"
#include "hip/runtime.hh"
#include "mem/backing_store.hh"
#include "mem/frame_allocator.hh"
#include "mem/geometry.hh"
#include "mem/node.hh"
#include "policy/engine.hh"
#include "prof/counters.hh"
#include "prof/meminfo.hh"
#include "prof/perf.hh"
#include "prof/rocprof.hh"
#include "sched/calendar.hh"
#include "trace/tracer.hh"
#include "vm/address_space.hh"
#include "vm/fault_handler.hh"

namespace upm::core {

class Process;

/** One node (1..N APUs) + one process, fully wired. */
class System
{
  public:
    explicit System(const SystemConfig &config = {});

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    const SystemConfig &config() const { return cfg; }
    /** Socket 0's topology (the classic single-APU accessor). */
    const Apu &apu() const { return apuTopo; }

    mem::MemGeometry &geometry() { return geom; }
    /** Socket 0's HBM shard. On a one-socket node this is the whole
     *  physical memory, bit-identical to the legacy allocator; on a
     *  multi-socket node use node() for the global view. */
    mem::FrameAllocator &frames() { return node.shard(0); }
    /** The sharded node-wide physical memory (global frame ids). */
    mem::NodeMemory &nodeMemory() { return node; }
    mem::BackingStore &backing() { return backingStore; }
    vm::AddressSpace &addressSpace() { return as; }
    vm::FaultHandler &faultHandler() { return faults; }
    alloc::AllocatorRegistry &allocators() { return registry; }
    hip::Runtime &runtime() { return rt; }
    /** The discrete-event calendar every timed runtime operation posts
     *  completion events to (one FIFO queue per engine). */
    sched::EventCalendar &eventCalendar() { return calendar; }

    // ---- Sockets and the fabric ----------------------------------------
    unsigned numSockets() const { return node.numSockets(); }
    Socket &socket(unsigned s) { return *socketList[s]; }
    const Socket &socket(unsigned s) const { return *socketList[s]; }
    /** The xGMI link model, or null on a one-socket node. */
    fabric::Fabric *fabric() { return fab.get(); }
    const fabric::Fabric *fabric() const { return fab.get(); }

    prof::CounterRegistry &counters() { return counterRegistry; }
    /** Socket 0's NUMA meminfo view (see meminfo(unsigned)). */
    prof::NumaMeminfo &meminfo() { return numaMeminfo; }
    /** Socket @p s's NUMA meminfo view: its shard's frames and its
     *  stacks only, the way libnuma reports one node at a time. */
    prof::NumaMeminfo &meminfo(unsigned s) { return socketList[s]->meminfo; }
    prof::ProcessRss &rss() { return processRss; }

    /** The UPMSan auditor, or null when cfg.audit.enabled is false. */
    audit::Auditor *auditor() { return aud.get(); }
    const audit::Auditor *auditor() const { return aud.get(); }

    /** UPMInject, or null when cfg.inject.enabled is false. */
    inject::Injector *injector() { return inj.get(); }
    const inject::Injector *injector() const { return inj.get(); }

    /** UPMTrace, or null when cfg.trace.enabled is false. */
    trace::Tracer *tracer() { return trc.get(); }
    const trace::Tracer *tracer() const { return trc.get(); }

    /** UPMPolicy, or null when cfg.policy.enabled is false. */
    policy::PolicyEngine *policyEngine() { return pol.get(); }
    const policy::PolicyEngine *policyEngine() const
    {
        return pol.get();
    }

    /**
     * End-of-run whole-structure checks (cheap per-event hooks cannot
     * see them): full system/GPU page-table cross-check, the per-shard
     * frame leak scan, and -- on multi-socket nodes -- the cross-shard
     * ownership audit (every mapped frame busy in the socket that owns
     * its global id range). Call after the workload is done, before
     * reading auditor()->violations(). No-op when auditing is off.
     */
    void finalizeAudit();

    // ---- Multi-process serving (UPMServe) ------------------------------
    /**
     * Create an additional simulated process over this node's shared
     * shards: its own address space (in a fresh, never-recycled 64 GiB
     * VA window past the primary window), fault handler, allocator
     * registry and runtime, wired to this System's auditor / injector
     * / tracer. The caller owns the Process and must destroy it before
     * the System. The primary addressSpace()/runtime() pair is
     * untouched -- single-process users are byte-identical.
     */
    std::unique_ptr<Process> createProcess();

    /** Live processes created through createProcess(), creation order
     *  (the primary address space is not a Process). */
    const std::vector<Process *> &processes() const { return procs; }

    /** Total processes ever created (monotonic; pids start at 1). */
    std::uint64_t processesCreated() const { return nextPid - 1; }

  private:
    friend class Process;
    void registerProcess(Process *process);
    void unregisterProcess(Process *process);

    SystemConfig cfg;
    Apu apuTopo;
    mem::MemGeometry geom;
    /** Per-socket HBM shards over the global frame space. */
    mem::NodeMemory node;
    mem::BackingStore backingStore;
    vm::AddressSpace as;
    vm::FaultHandler faults;
    alloc::AllocatorRegistry registry;
    hip::Runtime rt;
    /** Per-System event calendar; wired into the runtime at birth. */
    sched::EventCalendar calendar;
    prof::CounterRegistry counterRegistry;
    prof::NumaMeminfo numaMeminfo;
    prof::ProcessRss processRss;
    /** Per-socket slices (Apu + shard ref + meminfo); unique_ptr
     *  because Socket carries a reference member. */
    std::vector<std::unique_ptr<Socket>> socketList;
    /** xGMI link model; created only when numSockets > 1 so a
     *  one-socket System never consults it (byte-identity). */
    std::unique_ptr<fabric::Fabric> fab;
    /** Created (and wired into every layer) only when auditing is on. */
    std::unique_ptr<audit::Auditor> aud;
    /** Created (and wired into every layer) only when injecting. */
    std::unique_ptr<inject::Injector> inj;
    /** Created (and wired into every layer) only when tracing. */
    std::unique_ptr<trace::Tracer> trc;
    /** Created (and wired into vm + alloc) only when cfg.policy is
     *  enabled; every consumer keeps a null default. */
    std::unique_ptr<policy::PolicyEngine> pol;
    /** Live serving processes (owned by their creators), creation
     *  order -- finalizeAudit unions their page tables into the leak
     *  scan's mapped set. */
    std::vector<Process *> procs;
    /** Next pid; also indexes the next private VA window. */
    std::uint64_t nextPid = 1;
};

} // namespace upm::core

#endif // UPM_CORE_SYSTEM_HH

/**
 * @file
 * The System: one simulated MI300A node running one process.
 *
 * Wires the full stack together -- geometry, frame allocator, backing
 * store, address space, fault handler, allocator registry, HIP runtime,
 * profiling views -- in dependency order. Every probe, bench, example
 * and workload starts by constructing one of these.
 */

#ifndef UPM_CORE_SYSTEM_HH
#define UPM_CORE_SYSTEM_HH

#include <memory>

#include "alloc/registry.hh"
#include "audit/auditor.hh"
#include "core/apu.hh"
#include "inject/injector.hh"
#include "core/calibration.hh"
#include "hip/runtime.hh"
#include "mem/backing_store.hh"
#include "mem/frame_allocator.hh"
#include "mem/geometry.hh"
#include "prof/counters.hh"
#include "prof/meminfo.hh"
#include "prof/perf.hh"
#include "prof/rocprof.hh"
#include "trace/tracer.hh"
#include "vm/address_space.hh"
#include "vm/fault_handler.hh"

namespace upm::core {

/** One APU + one process, fully wired. */
class System
{
  public:
    explicit System(const SystemConfig &config = {});

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    const SystemConfig &config() const { return cfg; }
    const Apu &apu() const { return apuTopo; }

    mem::MemGeometry &geometry() { return geom; }
    mem::FrameAllocator &frames() { return frameAlloc; }
    mem::BackingStore &backing() { return backingStore; }
    vm::AddressSpace &addressSpace() { return as; }
    vm::FaultHandler &faultHandler() { return faults; }
    alloc::AllocatorRegistry &allocators() { return registry; }
    hip::Runtime &runtime() { return rt; }

    prof::CounterRegistry &counters() { return counterRegistry; }
    prof::NumaMeminfo &meminfo() { return numaMeminfo; }
    prof::ProcessRss &rss() { return processRss; }

    /** The UPMSan auditor, or null when cfg.audit.enabled is false. */
    audit::Auditor *auditor() { return aud.get(); }
    const audit::Auditor *auditor() const { return aud.get(); }

    /** UPMInject, or null when cfg.inject.enabled is false. */
    inject::Injector *injector() { return inj.get(); }
    const inject::Injector *injector() const { return inj.get(); }

    /** UPMTrace, or null when cfg.trace.enabled is false. */
    trace::Tracer *tracer() { return trc.get(); }
    const trace::Tracer *tracer() const { return trc.get(); }

    /**
     * End-of-run whole-structure checks (cheap per-event hooks cannot
     * see them): full system/GPU page-table cross-check and the frame
     * leak scan. Call after the workload is done, before reading
     * auditor()->violations(). No-op when auditing is off.
     */
    void finalizeAudit();

  private:
    SystemConfig cfg;
    Apu apuTopo;
    mem::MemGeometry geom;
    mem::FrameAllocator frameAlloc;
    mem::BackingStore backingStore;
    vm::AddressSpace as;
    vm::FaultHandler faults;
    alloc::AllocatorRegistry registry;
    hip::Runtime rt;
    prof::CounterRegistry counterRegistry;
    prof::NumaMeminfo numaMeminfo;
    prof::ProcessRss processRss;
    /** Created (and wired into every layer) only when auditing is on. */
    std::unique_ptr<audit::Auditor> aud;
    /** Created (and wired into every layer) only when injecting. */
    std::unique_ptr<inject::Injector> inj;
    /** Created (and wired into every layer) only when tracing. */
    std::unique_ptr<trace::Tracer> trc;
};

} // namespace upm::core

#endif // UPM_CORE_SYSTEM_HH

/**
 * @file
 * One socket of a multi-APU node: the per-socket slice of a System.
 *
 * An MI300A node scales out by adding whole APUs -- each socket brings
 * its own CCDs/XCDs, its own HBM stacks, and its own NUMA meminfo
 * view, joined to the others over xGMI (fabric::Fabric). The Socket
 * bundle groups the per-socket pieces the System composes so probes
 * and benches can ask "socket s" questions without reassembling the
 * slice by hand.
 */

#ifndef UPM_CORE_SOCKET_HH
#define UPM_CORE_SOCKET_HH

#include "cache/infinity_cache.hh"
#include "core/apu.hh"
#include "core/calibration.hh"
#include "mem/frame_allocator.hh"
#include "prof/meminfo.hh"

namespace upm::core {

/** Per-socket slice: topology + HBM shard + meminfo view. */
struct Socket
{
    /** Socket id == xGMI endpoint id == shard index. */
    unsigned id;
    /** This socket's CCD/XCD/IOD topology. */
    Apu apu;
    /** This socket's HBM shard (owned by mem::NodeMemory). */
    mem::FrameAllocator &frames;
    /** libnuma-style view of this socket's shard only. */
    prof::NumaMeminfo meminfo;
    /** This socket's own 256 MiB Infinity Cache, keyed off the shard:
     *  it caches only traffic to frames this shard owns. On a
     *  multi-socket node PerfModel queries each socket's instance for
     *  its slice of a working set instead of pooling everything into
     *  one cache (setSocketCaches). */
    cache::InfinityCache icache;

    Socket(const SystemConfig &config, unsigned socket_id,
           mem::FrameAllocator &shard)
        : id(socket_id), apu(config, socket_id), frames(shard),
          meminfo(shard), icache(shard.geometry(), config.infinityCache)
    {
    }

    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;
};

} // namespace upm::core

#endif // UPM_CORE_SOCKET_HH

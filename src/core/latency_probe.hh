/**
 * @file
 * Pointer-chase latency probe (multichase methodology, paper Fig. 2).
 *
 * Allocates a buffer with a given allocator, first-touches it from the
 * chosen agent, and reports the modelled dependent-load latency of a
 * uniform-random chase over the buffer from the GPU and from the CPU.
 * The Infinity Cache term comes from the allocation's *actual* frame
 * placement, which is what makes CPU latency allocator-sensitive
 * between L3 capacity and the 2 GiB plateau.
 */

#ifndef UPM_CORE_LATENCY_PROBE_HH
#define UPM_CORE_LATENCY_PROBE_HH

#include <cstdint>
#include <vector>

#include "alloc/allocation.hh"
#include "core/system.hh"

namespace upm::core {

/** Who performs the first touch of on-demand memory. */
enum class FirstTouch : std::uint8_t { Cpu, Gpu };

/** One row of the Fig. 2 sweep. */
struct LatencyPoint
{
    std::uint64_t bufferBytes = 0;
    SimTime gpuLatency = 0.0;
    SimTime cpuLatency = 0.0;
};

/** Pointer-chase prober bound to a system. */
class LatencyProbe
{
  public:
    explicit LatencyProbe(System &system) : sys(system) {}

    /**
     * Measure GPU and CPU chase latency over one buffer.
     * The buffer is allocated, touched, measured, and freed.
     */
    LatencyPoint measure(alloc::AllocatorKind kind, std::uint64_t bytes,
                         FirstTouch first_touch = FirstTouch::Cpu);

    /** Full sweep over buffer sizes (Fig. 2 series for one allocator). */
    std::vector<LatencyPoint> sweep(alloc::AllocatorKind kind,
                                    const std::vector<std::uint64_t> &sizes,
                                    FirstTouch first_touch = FirstTouch::Cpu);

  private:
    System &sys;
};

} // namespace upm::core

#endif // UPM_CORE_LATENCY_PROBE_HH

#include "core/alloc_probe.hh"

#include <algorithm>
#include <vector>

#include "exec/task_pool.hh"

namespace upm::core {

AllocSpeedPoint
AllocProbe::measure(alloc::AllocatorKind kind, std::uint64_t size_bytes)
{
    auto &registry = sys.allocators();

    unsigned n = cfg.chunks;
    if (size_bytes > 0) {
        std::uint64_t fit = std::max<std::uint64_t>(
            1, cfg.holdCap / std::max<std::uint64_t>(size_bytes,
                                                     mem::kPageSize));
        n = static_cast<unsigned>(
            std::min<std::uint64_t>(n, fit));
    }

    AllocSpeedPoint point;
    point.sizeBytes = size_bytes;
    point.chunks = n;

    std::vector<alloc::Allocation> held;
    held.reserve(n);
    SimTime alloc_total = 0.0;
    for (unsigned i = 0; i < n; ++i) {
        held.push_back(registry.allocate(kind, size_bytes));
        alloc_total += held.back().allocTime;
    }
    SimTime free_total = 0.0;
    for (auto &allocation : held)
        free_total += registry.deallocate(allocation);

    point.allocMean = alloc_total / static_cast<double>(n);
    point.freeMean = free_total / static_cast<double>(n);
    return point;
}

std::vector<AllocSpeedPoint>
AllocProbe::sweep(alloc::AllocatorKind kind,
                  const std::vector<std::uint64_t> &sizes)
{
    const SystemConfig &config = sys.config();
    bool xnack = sys.runtime().xnack();
    return exec::globalPool().parallelMap<AllocSpeedPoint>(
        sizes.size(), [&](std::size_t i) {
            System local(config);
            local.runtime().setXnack(xnack);
            AllocProbe probe(local, cfg);
            return probe.measure(kind, sizes[i]);
        });
}

} // namespace upm::core

#include "core/latency_probe.hh"

#include "common/scope_guard.hh"
#include "exec/task_pool.hh"
#include "hip/kernel.hh"

namespace upm::core {

LatencyPoint
LatencyProbe::measure(alloc::AllocatorKind kind, std::uint64_t bytes,
                      FirstTouch first_touch)
{
    auto &rt = sys.runtime();

    // On-demand GPU touches need XNACK; remember and restore the mode.
    // The guard restores even when allocation or measurement throws --
    // a leaked forced mode would skew every later measurement.
    bool saved_xnack = rt.xnack();
    ScopeExit restore_xnack([&rt, saved_xnack] {
        rt.setXnack(saved_xnack);
    });
    auto traits = alloc::traitsOf(kind, saved_xnack);
    if (traits.onDemand && first_touch == FirstTouch::Gpu)
        rt.setXnack(true);

    hip::DevPtr ptr = rt.allocate(kind, bytes);

    if (first_touch == FirstTouch::Cpu) {
        rt.cpuFirstTouch(ptr, bytes);
    } else {
        hip::KernelDesc init;
        init.name = "chase_init";
        init.buffers.push_back({ptr, bytes, bytes});
        rt.launchKernel(init, nullptr);
        rt.deviceSynchronize();
    }

    auto profile = rt.perf().profileRegion(rt.addressSpace(), ptr, bytes);
    LatencyPoint point;
    point.bufferBytes = bytes;
    point.gpuLatency = rt.perf().gpuChaseLatency(profile);
    point.cpuLatency = rt.perf().cpuChaseLatency(profile);

    rt.freeChecked(ptr);
    return point;
}

std::vector<LatencyPoint>
LatencyProbe::sweep(alloc::AllocatorKind kind,
                    const std::vector<std::uint64_t> &sizes,
                    FirstTouch first_touch)
{
    // Each point measures an independent buffer on a fresh System, so
    // the sweep fans out to worker-local Systems; a point's result
    // depends only on (config, size), making the sweep bit-identical
    // at any worker count.
    const SystemConfig &config = sys.config();
    return exec::globalPool().parallelMap<LatencyPoint>(
        sizes.size(), [&](std::size_t i) {
            System local(config);
            LatencyProbe probe(local);
            return probe.measure(kind, sizes[i], first_touch);
        });
}

} // namespace upm::core

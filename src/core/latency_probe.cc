#include "core/latency_probe.hh"

#include "hip/kernel.hh"

namespace upm::core {

LatencyPoint
LatencyProbe::measure(alloc::AllocatorKind kind, std::uint64_t bytes,
                      FirstTouch first_touch)
{
    auto &rt = sys.runtime();

    // On-demand GPU touches need XNACK; remember and restore the mode.
    bool saved_xnack = rt.xnack();
    auto traits = alloc::traitsOf(kind, saved_xnack);
    if (traits.onDemand && first_touch == FirstTouch::Gpu)
        rt.setXnack(true);

    hip::DevPtr ptr = rt.allocate(kind, bytes);

    if (first_touch == FirstTouch::Cpu) {
        rt.cpuFirstTouch(ptr, bytes);
    } else {
        hip::KernelDesc init;
        init.name = "chase_init";
        init.buffers.push_back({ptr, bytes, bytes});
        rt.launchKernel(init, nullptr);
        rt.deviceSynchronize();
    }

    auto profile = rt.perf().profileRegion(rt.addressSpace(), ptr, bytes);
    LatencyPoint point;
    point.bufferBytes = bytes;
    point.gpuLatency = rt.perf().gpuChaseLatency(profile);
    point.cpuLatency = rt.perf().cpuChaseLatency(profile);

    rt.hipFree(ptr);
    rt.setXnack(saved_xnack);
    return point;
}

std::vector<LatencyPoint>
LatencyProbe::sweep(alloc::AllocatorKind kind,
                    const std::vector<std::uint64_t> &sizes,
                    FirstTouch first_touch)
{
    std::vector<LatencyPoint> points;
    points.reserve(sizes.size());
    for (std::uint64_t bytes : sizes)
        points.push_back(measure(kind, bytes, first_touch));
    return points;
}

} // namespace upm::core

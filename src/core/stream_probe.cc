#include "core/stream_probe.hh"

#include <algorithm>

#include "common/scope_guard.hh"
#include "exec/task_pool.hh"
#include "prof/rocprof.hh"
#include "tlb/tlb.hh"

namespace upm::core {

StreamProbe::Arrays
StreamProbe::allocate(alloc::AllocatorKind kind, std::uint64_t bytes,
                      FirstTouch first_touch)
{
    auto &rt = sys.runtime();
    Arrays arrays;
    arrays.bytes = bytes;
    arrays.a = rt.allocate(kind, bytes);
    arrays.b = rt.allocate(kind, bytes);
    arrays.c = rt.allocate(kind, bytes);

    for (hip::DevPtr ptr : {arrays.a, arrays.b, arrays.c}) {
        if (first_touch == FirstTouch::Cpu) {
            rt.cpuFirstTouch(ptr, bytes);
        } else {
            hip::KernelDesc init;
            init.name = "stream_init";
            init.buffers.push_back({ptr, bytes, bytes});
            rt.launchKernel(init, nullptr);
        }
    }
    rt.deviceSynchronize();
    return arrays;
}

void
StreamProbe::release(Arrays &arrays)
{
    auto &rt = sys.runtime();
    rt.freeChecked(arrays.a);
    rt.freeChecked(arrays.b);
    rt.freeChecked(arrays.c);
    arrays = {};
}

std::uint64_t
StreamProbe::simulateTlbMisses(const Arrays &arrays)
{
    const auto &tlb_cal = sys.config().gpuTlb;
    const auto &as = sys.addressSpace();
    unsigned total_cus = sys.config().numCus;
    unsigned sampled = std::min(cfg.sampledCus, total_cus);

    std::uint64_t blocks_per_array = arrays.bytes / cfg.blockBytes;
    std::uint64_t pages_per_block =
        std::max<std::uint64_t>(1, cfg.blockBytes / mem::kPageSize);

    // Fragment span per page, precomputed per array for speed.
    auto spans_of = [&](hip::DevPtr base) {
        std::uint64_t pages = arrays.bytes / mem::kPageSize;
        std::vector<std::pair<vm::Vpn, std::uint64_t>> spans(pages);
        vm::Vpn first = vm::vpnOf(base);
        // Unmapped pages translate one page at a time; overwrite the
        // mapped stretches from the fragment runs (no per-page walks).
        for (std::uint64_t p = 0; p < pages; ++p)
            spans[p] = {first + p, 1};
        as.gpuTable().forEachFragmentRun(
            first, first + pages,
            [&](vm::Vpn seg_begin, std::uint64_t len,
                std::uint8_t frag) {
                std::uint64_t span = 1ull << frag;
                for (vm::Vpn vpn = seg_begin; vpn < seg_begin + len;
                     ++vpn)
                    spans[vpn - first] = {vpn & ~(span - 1), span};
            });
        return spans;
    };
    auto spans_a = spans_of(arrays.a);
    auto spans_b = spans_of(arrays.b);
    auto spans_c = spans_of(arrays.c);
    vm::Vpn vpn_a = vm::vpnOf(arrays.a);
    vm::Vpn vpn_b = vm::vpnOf(arrays.b);
    vm::Vpn vpn_c = vm::vpnOf(arrays.c);

    // Simulate `sampled` CUs: blocks are dispatched round-robin, so CU
    // k executes blocks k, k+228, ... For each block the TRIAD kernel
    // issues one translation request per touched page of b, c and a.
    // Each CU owns a private UTCL1 over read-only span tables, so the
    // per-CU walks fan out to the pool; the summation order is fixed,
    // keeping the total exact at any worker count.
    tlb::FragTlbConfig tcfg;
    tcfg.entries = tlb_cal.utcl1Entries;
    tcfg.maxSpanPages = tlb_cal.utcl1MaxSpanPages;
    std::vector<std::uint64_t> cu_misses(sampled, 0);
    exec::globalPool().parallelFor(sampled, [&](std::size_t cu) {
        tlb::FragTlb utcl1(tcfg);
        for (unsigned iter = 0; iter < cfg.profiledIterations; ++iter) {
            for (std::uint64_t blk = cu; blk < blocks_per_array;
                 blk += total_cus) {
                std::uint64_t first_page =
                    blk * cfg.blockBytes / mem::kPageSize;
                for (std::uint64_t p = first_page;
                     p < first_page + pages_per_block; ++p) {
                    const struct
                    {
                        vm::Vpn base;
                        const std::pair<vm::Vpn, std::uint64_t> *span;
                    } refs[3] = {{vpn_b, &spans_b[p]},
                                 {vpn_c, &spans_c[p]},
                                 {vpn_a, &spans_a[p]}};
                    for (const auto &ref : refs) {
                        vm::Vpn vpn = ref.base + p;
                        if (!utcl1.lookup(vpn)) {
                            utcl1.insert(vpn, ref.span->first,
                                         ref.span->second);
                        }
                    }
                }
            }
        }
        cu_misses[cu] = utcl1.misses();
    });
    std::uint64_t misses = 0;
    for (std::uint64_t m : cu_misses)
        misses += m;
    // Scale the sampled CUs to the whole GPU.
    return misses * total_cus / sampled;
}

GpuStreamResult
StreamProbe::gpuTriad(alloc::AllocatorKind kind, FirstTouch first_touch)
{
    auto &rt = sys.runtime();
    bool saved_xnack = rt.xnack();
    ScopeExit restore_xnack([&rt, saved_xnack] {
        rt.setXnack(saved_xnack);
    });
    auto traits = alloc::traitsOf(kind, saved_xnack);
    if (traits.onDemand || first_touch == FirstTouch::Gpu)
        rt.setXnack(true);

    Arrays arrays = allocate(kind, cfg.gpuArrayBytes, first_touch);

    // TRIAD a = b + s*c moves 3 N bytes per iteration. All three
    // arrays share allocator and placement; profile one and model the
    // aggregate stream.
    auto profile = rt.perf().profileRegion(rt.addressSpace(), arrays.a,
                                           arrays.bytes);
    GpuStreamResult result;
    result.bandwidth = rt.perf().gpuStreamBandwidth(profile);
    result.pagesPerArray = arrays.bytes / mem::kPageSize;
    result.tlbMisses = simulateTlbMisses(arrays);

    sys.counters().add(prof::gpu_counters::kUtcl1TranslationMiss,
                       result.tlbMisses);
    sys.counters().add(prof::gpu_counters::kKernels, cfg.iterations);

    release(arrays);
    return result;
}

CpuStreamResult
StreamProbe::cpuTriad(alloc::AllocatorKind kind, FirstTouch first_touch)
{
    auto &rt = sys.runtime();
    bool saved_xnack = rt.xnack();
    ScopeExit restore_xnack([&rt, saved_xnack] {
        rt.setXnack(saved_xnack);
    });
    auto traits = alloc::traitsOf(kind, saved_xnack);
    if (traits.onDemand && first_touch == FirstTouch::Gpu)
        rt.setXnack(true);

    std::uint64_t fault_base = rt.addressSpace().cpuFaults();
    Arrays arrays = allocate(kind, cfg.cpuArrayBytes, first_touch);

    auto profile = rt.perf().profileRegion(rt.addressSpace(), arrays.a,
                                           arrays.bytes);
    CpuStreamResult result;
    unsigned max_threads = sys.config().numCpuCores;
    result.perThreadBandwidth.resize(max_threads);
    for (unsigned t = 1; t <= max_threads; ++t) {
        double bw = rt.perf().cpuStreamBandwidth(profile, t);
        result.perThreadBandwidth[t - 1] = bw;
        if (bw >= result.bandwidth) {
            result.bandwidth = bw;
            result.bestThreads = t;
        }
    }

    // perf page-faults over the whole benchmark: the three arrays'
    // first-touch faults plus the residual process noise perf sees on
    // a real node (empty for the simulated process itself).
    result.pageFaults = rt.addressSpace().cpuFaults() - fault_base +
                        kResidualProcessFaults(first_touch);

    // Streaming reads exceed dTLB reach identically for every
    // allocator (the paper's observation: CPU-side TLB behaviour does
    // not differentiate them): one miss per page per pass.
    result.dtlbMisses = 3ull * (arrays.bytes / mem::kPageSize) *
                        cfg.iterations;

    release(arrays);
    return result;
}

std::uint64_t
StreamProbe::kResidualProcessFaults(FirstTouch first_touch)
{
    // Fig. 10 floor: even fully pre-populated runs show a few thousand
    // faults from the runtime/loader; GPU-init runs show about twice
    // as many (HIP initialization touches more of its own state).
    return first_touch == FirstTouch::Cpu ? 4200 : 8400;
}

} // namespace upm::core

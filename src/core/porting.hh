/**
 * @file
 * The porting-strategy library (paper Section 3.3): reusable pieces
 * for transforming explicit-model codes to the UPM unified model.
 *
 *  - UnifiedBuffer: one allocation visible to CPU and GPU, replacing a
 *    duplicated (host, device) pair. Default allocator is hipMalloc,
 *    the paper's recommendation.
 *  - DoubleBuffer: swap-instead-of-copy for concurrent CPU-GPU access
 *    (used by the heartwall port).
 *  - reliableFreeMemory: a free-memory query that sees ALL allocators
 *    (meminfo/libnuma) instead of hipMemGetInfo's hipMalloc-only view
 *    (used by the nn port discussion).
 *  - ManagedStaticVar: the __managed__ storage-specifier shim (used by
 *    heartwall-v1; carries the documented bandwidth penalty).
 */

#ifndef UPM_CORE_PORTING_HH
#define UPM_CORE_PORTING_HH

#include <cstdint>
#include <utility>

#include "core/system.hh"

namespace upm::core {

/**
 * RAII unified allocation: a single buffer for both agents.
 * Non-copyable, movable.
 */
template <typename T>
class UnifiedBuffer
{
  public:
    UnifiedBuffer(hip::Runtime &runtime, std::uint64_t count,
                  alloc::AllocatorKind kind =
                      alloc::AllocatorKind::HipMalloc)
        : rt(&runtime), elems(count)
    {
        devPtr = rt->allocate(kind, count * sizeof(T));
    }

    ~UnifiedBuffer() { release(); }

    UnifiedBuffer(const UnifiedBuffer &) = delete;
    UnifiedBuffer &operator=(const UnifiedBuffer &) = delete;

    UnifiedBuffer(UnifiedBuffer &&other) noexcept { *this = std::move(other); }

    UnifiedBuffer &
    operator=(UnifiedBuffer &&other) noexcept
    {
        if (this != &other) {
            release();
            rt = other.rt;
            devPtr = other.devPtr;
            elems = other.elems;
            other.rt = nullptr;
            other.devPtr = 0;
            other.elems = 0;
        }
        return *this;
    }

    hip::DevPtr devicePtr() const { return devPtr; }
    std::uint64_t size() const { return elems; }
    std::uint64_t bytes() const { return elems * sizeof(T); }

    /** Host view of the data (functional computation). */
    T *data() { return rt->hostPtr<T>(devPtr, elems); }
    const T *data() const { return rt->hostPtr<T>(devPtr, elems); }

    T &operator[](std::uint64_t i) { return data()[i]; }
    const T &operator[](std::uint64_t i) const { return data()[i]; }

  private:
    void
    release()
    {
        if (rt != nullptr && devPtr != 0)
            rt->freeChecked(devPtr);
        rt = nullptr;
        devPtr = 0;
    }

    hip::Runtime *rt = nullptr;
    hip::DevPtr devPtr = 0;
    std::uint64_t elems = 0;
};

/**
 * Double buffering: the CPU fills `front()` while the GPU consumes
 * `back()`; `swap()` exchanges them instead of copying (the paper's
 * strategy for concurrent CPU-GPU access under the unified model).
 */
template <typename T>
class DoubleBuffer
{
  public:
    DoubleBuffer(hip::Runtime &runtime, std::uint64_t count,
                 alloc::AllocatorKind kind =
                     alloc::AllocatorKind::HipMalloc)
        : buf0(runtime, count, kind), buf1(runtime, count, kind)
    {}

    UnifiedBuffer<T> &front() { return flipped ? buf1 : buf0; }
    UnifiedBuffer<T> &back() { return flipped ? buf0 : buf1; }

    /** O(1): no data movement, unlike the explicit-model copy. */
    void swap() { flipped = !flipped; }

  private:
    UnifiedBuffer<T> buf0;
    UnifiedBuffer<T> buf1;
    bool flipped = false;
};

/**
 * Free memory as an application should query it on UPM: the NUMA-node
 * view, which reflects every allocator after physical backing exists.
 */
std::uint64_t reliableFreeMemory(System &system);

/**
 * Free memory as legacy code queries it (hipMemGetInfo): blind to
 * everything but hipMalloc. Kept for the porting comparison.
 */
std::uint64_t legacyFreeMemory(System &system);

/** The __managed__ storage-specifier shim: a static-lifetime unified
 *  variable with the uncached-access penalty. */
template <typename T>
class ManagedStaticVar
{
  public:
    ManagedStaticVar(hip::Runtime &runtime, std::uint64_t count)
        : buf(runtime, count, alloc::AllocatorKind::ManagedStatic)
    {}

    hip::DevPtr devicePtr() const { return buf.devicePtr(); }
    std::uint64_t size() const { return buf.size(); }
    std::uint64_t bytes() const { return buf.bytes(); }
    T *data() { return buf.data(); }
    T &operator[](std::uint64_t i) { return buf[i]; }

  private:
    UnifiedBuffer<T> buf;
};

} // namespace upm::core

#endif // UPM_CORE_PORTING_HH

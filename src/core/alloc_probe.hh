/**
 * @file
 * Allocation-speed probe (paper Section 3.1 "Allocation Speed",
 * results Fig. 6 and the deallocation discussion of Section 5.1).
 *
 * Two loops: allocate N chunks of M bytes, then free them; the mean
 * simulated time per call is reported. Allocation does NOT touch the
 * memory (first-touch cost is the page-fault probe's job).
 */

#ifndef UPM_CORE_ALLOC_PROBE_HH
#define UPM_CORE_ALLOC_PROBE_HH

#include <cstdint>
#include <vector>

#include "alloc/allocation.hh"
#include "core/system.hh"

namespace upm::core {

/** One (allocator, size) measurement. */
struct AllocSpeedPoint
{
    std::uint64_t sizeBytes = 0;
    SimTime allocMean = 0.0;  //!< ns per allocate call
    SimTime freeMean = 0.0;   //!< ns per free call
    unsigned chunks = 0;      //!< N actually used (capacity-limited)
};

/** Allocation speed prober. */
class AllocProbe
{
  public:
    struct Params
    {
        unsigned chunks = 100;  //!< N in the paper
        /** Cap on simultaneously-held bytes; N is reduced for large M
         *  so up-front allocators fit the modelled capacity. */
        std::uint64_t holdCap = 4 * GiB;
    };

    explicit AllocProbe(System &system) : AllocProbe(system, Params()) {}

    AllocProbe(System &system, const Params &params)
        : sys(system), cfg(params)
    {}

    /** Run the two-loop benchmark for one allocator and size. */
    AllocSpeedPoint measure(alloc::AllocatorKind kind,
                            std::uint64_t size_bytes);

    /**
     * Fig. 6 sweep over sizes: each point runs on its own worker-local
     * System (same config and XNACK mode as the bound one), so results
     * are bit-identical at any worker count.
     */
    std::vector<AllocSpeedPoint> sweep(
        alloc::AllocatorKind kind,
        const std::vector<std::uint64_t> &sizes);

  private:
    System &sys;
    Params cfg;
};

} // namespace upm::core

#endif // UPM_CORE_ALLOC_PROBE_HH

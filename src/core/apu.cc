#include "core/apu.hh"

#include "common/log.hh"

namespace upm::core {

Apu::Apu(const SystemConfig &config) : cfg(config)
{
    if (cfg.numXcds == 0 || cfg.numCus % cfg.numXcds != 0)
        fatal("CU count must divide across XCDs");
    if (cfg.numCpuCores % 3 != 0)
        fatal("CPU cores must divide across 3 CCDs");
}

unsigned
Apu::xcdOfCu(unsigned cu) const
{
    if (cu >= cfg.numCus)
        panic("CU index %u out of range", cu);
    return cu / cusPerXcd();
}

unsigned
Apu::ccdOfCore(unsigned core) const
{
    if (core >= cfg.numCpuCores)
        panic("core index %u out of range", core);
    return core / coresPerCcd();
}

std::string
Apu::description() const
{
    return strprintf(
        "MI300A model: %u CUs (%u XCDs x %u), %u CPU cores (3 CCDs x "
        "%u), %u HBM stacks, %.1f GiB modelled capacity (%.0f GiB real)",
        cfg.numCus, cfg.numXcds, cusPerXcd(), cfg.numCpuCores,
        coresPerCcd(), cfg.geometry.numStacks,
        static_cast<double>(cfg.geometry.capacityBytes) /
            static_cast<double>(GiB),
        static_cast<double>(cfg.realCapacityBytes) /
            static_cast<double>(GiB));
}

} // namespace upm::core

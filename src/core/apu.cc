#include "core/apu.hh"

#include "common/log.hh"

namespace upm::core {

Status
Apu::validate(const SystemConfig &config)
{
    if (config.numXcds == 0 || config.numCus == 0 ||
        config.numCus % config.numXcds != 0) {
        return Status::InvalidValue;
    }
    if (config.numCcds == 0 || config.numCpuCores == 0 ||
        config.numCpuCores % config.numCcds != 0) {
        return Status::InvalidValue;
    }
    if (config.numIods == 0)
        return Status::InvalidValue;
    if (config.numSockets == 0)
        return Status::InvalidValue;
    return Status::Success;
}

Apu::Apu(const SystemConfig &config, unsigned socket)
    : cfg(config), socketId(socket)
{
    Status status = validate(cfg);
    if (status != Status::Success) {
        throw StatusError(
            status,
            strprintf("APU topology: %u CUs / %u XCDs, %u cores / %u "
                      "CCDs, %u IODs, %u sockets (counts must be "
                      "nonzero and divisible)",
                      cfg.numCus, cfg.numXcds, cfg.numCpuCores,
                      cfg.numCcds, cfg.numIods, cfg.numSockets));
    }
}

unsigned
Apu::xcdOfCu(unsigned cu) const
{
    if (cu >= cfg.numCus)
        panic("CU index %u out of range", cu);
    return cu / cusPerXcd();
}

unsigned
Apu::ccdOfCore(unsigned core) const
{
    if (core >= cfg.numCpuCores)
        panic("core index %u out of range", core);
    return core / coresPerCcd();
}

std::string
Apu::description() const
{
    return strprintf(
        "MI300A model: %u CUs (%u XCDs x %u), %u CPU cores (%u CCDs x "
        "%u), %u HBM stacks, %.1f GiB modelled capacity (%.0f GiB real)",
        cfg.numCus, cfg.numXcds, cusPerXcd(), cfg.numCpuCores,
        numCcds(), coresPerCcd(), cfg.geometry.numStacks,
        static_cast<double>(cfg.geometry.capacityBytes) /
            static_cast<double>(GiB),
        static_cast<double>(cfg.realCapacityBytes) /
            static_cast<double>(GiB));
}

} // namespace upm::core

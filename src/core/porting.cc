#include "core/porting.hh"

namespace upm::core {

std::uint64_t
reliableFreeMemory(System &system)
{
    return system.meminfo().freeBytes();
}

std::uint64_t
legacyFreeMemory(System &system)
{
    return system.runtime().hipMemGetInfo().freeBytes;
}

} // namespace upm::core

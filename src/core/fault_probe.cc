#include "core/fault_probe.hh"

#include <algorithm>

#include "common/log.hh"

namespace upm::core {

const char *
faultScenarioName(FaultScenario scenario)
{
    switch (scenario) {
      case FaultScenario::GpuMajor: return "GPU Major";
      case FaultScenario::GpuMinor: return "GPU Minor";
      case FaultScenario::Cpu1: return "1CPU";
      case FaultScenario::Cpu12: return "12CPU";
    }
    return "<unknown>";
}

namespace {

vm::FaultType
faultTypeOf(FaultScenario scenario)
{
    switch (scenario) {
      case FaultScenario::GpuMajor: return vm::FaultType::GpuMajor;
      case FaultScenario::GpuMinor: return vm::FaultType::GpuMinor;
      case FaultScenario::Cpu1:
      case FaultScenario::Cpu12:
      default: return vm::FaultType::Cpu;
    }
}

unsigned
coresOf(FaultScenario scenario)
{
    return scenario == FaultScenario::Cpu12 ? 12 : 1;
}

} // namespace

void
FaultProbe::functionalFaults(FaultScenario scenario, std::uint64_t pages)
{
    auto &as = sys.addressSpace();
    bool saved_xnack = as.xnackEnabled();
    as.setXnack(true);

    vm::VmaPolicy policy;  // mmap-fresh anonymous memory
    policy.onDemand = true;
    policy.placement = vm::Placement::Scattered;
    vm::VirtAddr base =
        as.mmapAnon(pages * mem::kPageSize, policy, "fault_probe");
    vm::Vpn first = vm::vpnOf(base);

    switch (scenario) {
      case FaultScenario::GpuMajor:
        as.resolveGpuFault(first, pages);
        break;
      case FaultScenario::GpuMinor:
        for (std::uint64_t p = 0; p < pages; ++p)
            as.resolveCpuFault(first + p);
        as.resolveGpuFault(first, pages);
        break;
      case FaultScenario::Cpu1:
      case FaultScenario::Cpu12:
        for (std::uint64_t p = 0; p < pages; ++p)
            as.resolveCpuFault(first + p);
        break;
    }
    as.munmap(base);
    as.setXnack(saved_xnack);
}

SampleStats
FaultProbe::latencyDistribution(FaultScenario scenario)
{
    auto &handler = sys.faultHandler();
    vm::FaultType type = faultTypeOf(scenario);

    for (unsigned i = 0; i < cfg.warmupIterations; ++i)
        (void)handler.sampleColdLatency(type);

    SampleStats stats;
    for (unsigned i = 0; i < cfg.timedIterations; ++i) {
        // One page, resolved through the real VM path, priced cold.
        functionalFaults(scenario, 1);
        stats.add(handler.sampleColdLatency(type));
    }
    return stats;
}

double
FaultProbe::throughput(FaultScenario scenario, std::uint64_t pages)
{
    if (pages == 0)
        fatal("fault throughput of zero pages");
    std::uint64_t functional =
        std::min<std::uint64_t>(pages, cfg.functionalPageCap);
    functionalFaults(scenario, functional);
    return sys.faultHandler().throughput(faultTypeOf(scenario), pages,
                                         coresOf(scenario));
}

} // namespace upm::core

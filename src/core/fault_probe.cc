#include "core/fault_probe.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/scope_guard.hh"
#include "exec/task_pool.hh"
#include "trace/tracer.hh"

namespace upm::core {

const char *
faultScenarioName(FaultScenario scenario)
{
    switch (scenario) {
      case FaultScenario::GpuMajor: return "GPU Major";
      case FaultScenario::GpuMinor: return "GPU Minor";
      case FaultScenario::Cpu1: return "1CPU";
      case FaultScenario::Cpu12: return "12CPU";
    }
    return "<unknown>";
}

namespace {

vm::FaultType
faultTypeOf(FaultScenario scenario)
{
    switch (scenario) {
      case FaultScenario::GpuMajor: return vm::FaultType::GpuMajor;
      case FaultScenario::GpuMinor: return vm::FaultType::GpuMinor;
      case FaultScenario::Cpu1:
      case FaultScenario::Cpu12:
      default: return vm::FaultType::Cpu;
    }
}

unsigned
coresOf(FaultScenario scenario)
{
    return scenario == FaultScenario::Cpu12 ? 12 : 1;
}

} // namespace

void
FaultProbe::functionalFaults(FaultScenario scenario, std::uint64_t pages)
{
    auto &as = sys.addressSpace();
    bool saved_xnack = as.xnackEnabled();
    ScopeExit restore_xnack([&as, saved_xnack] {
        as.setXnack(saved_xnack);
    });
    as.setXnack(true);

    vm::VmaPolicy policy;  // mmap-fresh anonymous memory
    policy.onDemand = true;
    policy.placement = vm::Placement::Scattered;
    vm::VirtAddr base =
        as.mmapAnon(pages * mem::kPageSize, policy, "fault_probe");
    vm::Vpn first = vm::vpnOf(base);

    switch (scenario) {
      case FaultScenario::GpuMajor:
        as.resolveGpuFault(first, pages);
        break;
      case FaultScenario::GpuMinor:
        as.resolveCpuFaultRange(first, first + pages);
        as.resolveGpuFault(first, pages);
        break;
      case FaultScenario::Cpu1:
      case FaultScenario::Cpu12:
        as.resolveCpuFaultRange(first, first + pages);
        break;
    }
    as.munmapChecked(base);
}

SampleStats
FaultProbe::latencyDistribution(FaultScenario scenario)
{
    vm::FaultType type = faultTypeOf(scenario);
    const unsigned iters = cfg.timedIterations;
    const unsigned chunk = std::max(1u, cfg.iterationsPerTask);
    const std::size_t tasks = (iters + chunk - 1) / chunk;
    const SystemConfig &config = sys.config();

    // Iteration i's sample depends only on taskSeed(rootSeed, i); the
    // fixed chunking keeps task boundaries independent of the worker
    // count, so the distribution is identical at 1 or N workers.
    std::vector<std::vector<double>> parts(tasks);
    exec::globalPool().parallelFor(tasks, [&](std::size_t t) {
        System local(config);
        trace::TaskTraceScope task_scope(local.tracer(), t,
                                         exec::taskSeed(cfg.rootSeed, t));
        FaultProbe probe(local, cfg);
        auto &handler = local.faultHandler();
        unsigned lo = static_cast<unsigned>(t) * chunk;
        unsigned hi = std::min(iters, lo + chunk);
        parts[t].reserve(hi - lo);
        for (unsigned i = lo; i < hi; ++i) {
            // One page, resolved through the real VM path, priced cold.
            probe.functionalFaults(scenario, 1);
            handler.reseed(exec::taskSeed(cfg.rootSeed, i));
            parts[t].push_back(handler.sampleColdLatency(type));
        }
    });

    SampleStats stats;
    for (const auto &part : parts)
        stats.add(part);
    return stats;
}

std::vector<double>
FaultProbe::throughputSweep(FaultScenario scenario,
                            const std::vector<std::uint64_t> &pages)
{
    const SystemConfig &config = sys.config();
    return exec::globalPool().parallelMap<double>(
        pages.size(), [&](std::size_t i) {
            System local(config);
            trace::TaskTraceScope task_scope(
                local.tracer(), i, exec::taskSeed(cfg.rootSeed, i));
            FaultProbe probe(local, cfg);
            return probe.throughput(scenario, pages[i]);
        });
}

double
FaultProbe::throughput(FaultScenario scenario, std::uint64_t pages)
{
    if (pages == 0)
        fatal("fault throughput of zero pages");
    std::uint64_t functional =
        std::min<std::uint64_t>(pages, cfg.functionalPageCap);
    functionalFaults(scenario, functional);
    return sys.faultHandler().throughput(faultTypeOf(scenario), pages,
                                         coresOf(scenario));
}

} // namespace upm::core

/**
 * @file
 * One simulated process on a shared node.
 *
 * The classic System wires exactly one process (one AddressSpace, one
 * Runtime) over the node's physical memory -- the single-workload
 * shape every characterization bench uses. The serving node (UPMServe,
 * src/serve) multiplexes *thousands* of short-lived processes over the
 * same shards, so the per-process half of the wiring is factored out
 * here: a Process owns its backing store, address space, fault
 * handler, allocator registry, runtime and event calendar, while the
 * frames, fabric and the aud/inj/trc hooks stay shared with (and wired
 * from) the owning System.
 *
 * Two contracts matter for the long-soak robustness story:
 *
 *  - VA windows are disjoint and never recycled. UPMSan's VA shadow
 *    (live/freed range maps) is keyed by raw virtual address across
 *    the whole node; giving a dead process's window to a new process
 *    would read as use-after-free or overlap. The System hands each
 *    process a fresh 64 GiB window from a monotonic counter -- the
 *    64-bit VA space never runs out at any realistic churn rate.
 *
 *  - Crash reclamation goes through the normal free paths. reclaim()
 *    releases every live allocation via Runtime::releaseAll() and
 *    unmaps straggler VMAs with munmapChecked(), so the auditor's
 *    shadow, the trace bus and the buddy free lists all observe
 *    ordinary frees -- provably leak-free after every churn epoch.
 */

#ifndef UPM_CORE_PROCESS_HH
#define UPM_CORE_PROCESS_HH

#include <cstdint>

#include "alloc/registry.hh"
#include "hip/runtime.hh"
#include "mem/backing_store.hh"
#include "sched/calendar.hh"
#include "vm/address_space.hh"
#include "vm/fault_handler.hh"

namespace upm::core {

class System;

/**
 * One simulated process: private address space and runtime over the
 * owning System's shared physical memory. Create through
 * System::createProcess() (which assigns the pid and the private VA
 * window); destroy before the System. Destruction reclaims every
 * resource the process still holds.
 */
class Process
{
  public:
    /** Use System::createProcess(); this is its implementation. */
    Process(System &system, std::uint64_t pid, vm::VirtAddr va_base,
            vm::VirtAddr va_end);
    ~Process();

    Process(const Process &) = delete;
    Process &operator=(const Process &) = delete;

    std::uint64_t pid() const { return id; }

    vm::AddressSpace &addressSpace() { return as; }
    vm::FaultHandler &faultHandler() { return faults; }
    alloc::AllocatorRegistry &allocators() { return registry; }
    hip::Runtime &runtime() { return rt; }
    System &system() { return sys; }

    /**
     * Release everything the process holds: every live allocation in
     * ascending pointer order through the runtime (releaseAll), then
     * any straggler VMAs mapped directly on the address space. Both
     * the clean-exit and the crash-kill path; idempotent.
     * @return pages of physical memory returned to the shards.
     */
    std::uint64_t reclaim();

    /** Pages of physical memory currently held (mapped + replicas). */
    std::uint64_t residentPages() const;

  private:
    System &sys;
    std::uint64_t id;
    // Declaration order is construction order: the address space needs
    // the backing store, the registry needs the address space, the
    // runtime needs all three.
    mem::BackingStore backingStore;
    vm::AddressSpace as;
    vm::FaultHandler faults;
    alloc::AllocatorRegistry registry;
    hip::Runtime rt;
    /** Private event calendar (per-process clocks and queues). */
    sched::EventCalendar calendar;
};

} // namespace upm::core

#endif // UPM_CORE_PROCESS_HH

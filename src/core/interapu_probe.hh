/**
 * @file
 * Inter-APU characterization probe (bench_interapu).
 *
 * Mirrors the Inter-APU deep-dive's experiment shapes on a simulated
 * N-socket node: for every (access socket, home socket) pair it homes
 * a region on one socket, touches it from another, and reports the
 * modelled stream bandwidth, dependent-load latency and remote fault
 * service time -- local HBM when src == dst, the xGMI link model
 * otherwise, with the asymmetry and per-hop taper visible in the
 * numbers. A second entry point sweeps the cross-socket placement
 * modes (home / first-touch / interleave / replicate) for one access
 * socket, the way numactl policy sweeps do on real nodes.
 *
 * Deterministic: every metric is a pure function of (config, pair),
 * so sweep results are independent of worker count and run order.
 */

#ifndef UPM_CORE_INTERAPU_PROBE_HH
#define UPM_CORE_INTERAPU_PROBE_HH

#include <cstdint>

#include "core/system.hh"

namespace upm::core {

/** One (access socket, home socket) measurement. */
struct InterApuPairResult
{
    unsigned accessSocket = 0;
    unsigned homeSocket = 0;
    unsigned hops = 0;          //!< 0 == local HBM
    bool farDirection = false;  //!< penalized link direction
    double remoteFraction = 0.0;
    double gpuBandwidth = 0.0;  //!< bytes/ns
    double cpuBandwidth = 0.0;  //!< bytes/ns
    SimTime gpuLatency = 0.0;   //!< dependent-load chase, ns
    SimTime cpuLatency = 0.0;
    /** GPU-major fault-batch service time against the home socket. */
    SimTime faultServiceTime = 0.0;
};

/** One placement-mode measurement (fixed access socket). */
struct InterApuPlacementResult
{
    vm::SocketPolicy policy = vm::SocketPolicy::Home;
    double remoteFraction = 0.0;
    double gpuBandwidth = 0.0;  //!< bytes/ns
    SimTime gpuLatency = 0.0;   //!< dependent-load chase, ns
};

/** Cross-socket prober bound to a (possibly one-socket) system. */
class InterApuProbe
{
  public:
    struct Params
    {
        /** Bytes homed/touched per measurement. */
        std::uint64_t regionBytes = 64 * MiB;
        /** CPU threads for the CPU bandwidth number. */
        unsigned cpuThreads = 8;
        /** Pages per batch in the fault-service number. */
        std::uint64_t faultBatchPages = 512;
    };

    explicit InterApuProbe(System &system)
        : InterApuProbe(system, Params())
    {}

    InterApuProbe(System &system, const Params &params)
        : sys(system), cfg(params)
    {}

    /**
     * Home a region on @p home_socket, access it from
     * @p access_socket. src == dst measures local HBM.
     */
    InterApuPairResult measurePair(unsigned access_socket,
                                   unsigned home_socket);

    /**
     * Allocate + populate a region under @p policy with the engine on
     * @p access_socket, then profile the access from that socket.
     */
    InterApuPlacementResult measurePlacement(vm::SocketPolicy policy,
                                             unsigned access_socket);

    const Params &params() const { return cfg; }

  private:
    /** Allocate + first-touch one region; @return its pointer. */
    hip::DevPtr populateRegion();

    System &sys;
    Params cfg;
};

} // namespace upm::core

#endif // UPM_CORE_INTERAPU_PROBE_HH

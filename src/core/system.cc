#include "core/system.hh"

namespace upm::core {

System::System(const SystemConfig &config)
    : cfg(config), apuTopo(cfg), geom(cfg.geometry),
      frameAlloc(geom, cfg.frames), as(frameAlloc, backingStore),
      faults(cfg.faults), registry(as),
      rt(as, registry, faults, cfg, geom), numaMeminfo(frameAlloc),
      processRss(as)
{
}

} // namespace upm::core

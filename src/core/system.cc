#include "core/system.hh"

#include <algorithm>

#include "common/log.hh"
#include "core/process.hh"

namespace upm::core {

namespace {

/**
 * Private VA windows for serving processes: 64 GiB each, starting
 * 1 TiB past the primary address space's mmap base so they can never
 * collide with it. Windows are handed out monotonically and NEVER
 * recycled -- UPMSan's VA shadow is keyed by raw address node-wide,
 * and a reused window would read as overlap / use-after-free. The
 * 64-bit address space fits ~2^27 such windows; a soak would take
 * years to exhaust them.
 */
constexpr vm::VirtAddr kProcessVaBase =
    0x7f00'0000'0000ull + 1 * TiB;
constexpr std::uint64_t kProcessVaSpan = 64 * GiB;

} // namespace

System::System(const SystemConfig &config)
    : cfg(config), apuTopo(cfg), geom(cfg.geometry),
      node(geom, cfg.frames, cfg.numSockets),
      as(node.shard(0), backingStore), faults(cfg.faults), registry(as),
      rt(as, registry, faults, cfg, geom), numaMeminfo(node.shard(0)),
      processRss(as)
{
    rt.setCalendar(&calendar);
    socketList.reserve(node.numSockets());
    for (unsigned s = 0; s < node.numSockets(); ++s) {
        socketList.push_back(
            std::make_unique<Socket>(cfg, s, node.shard(s)));
    }
    if (node.numSockets() > 1) {
        // The fabric exists only on multi-socket nodes; every consumer
        // keeps a null default so the one-socket wiring stays byte
        // identical to the pre-socket System.
        fab = std::make_unique<fabric::Fabric>(cfg.fabric,
                                               node.numSockets());
        as.setNode(&node);
        faults.setFabric(fab.get());
        rt.perf().setFabric(fab.get(), node.framesPerSocket());
        // Per-socket Infinity Caches: each shard's working-set slice
        // is covered by its own socket's 256 MiB, not a pooled cache.
        std::vector<const cache::InfinityCache *> caches;
        caches.reserve(socketList.size());
        for (const auto &socket : socketList)
            caches.push_back(&socket->icache);
        rt.perf().setSocketCaches(std::move(caches));
    }
    if (cfg.audit.enabled) {
        aud = std::make_unique<audit::Auditor>(cfg.audit);
        node.setAuditor(aud.get());
        as.setAuditor(aud.get());
        registry.setAuditor(aud.get());
        rt.setAuditor(aud.get());
    }
    if (cfg.inject.enabled) {
        inj = std::make_unique<inject::Injector>(cfg.inject);
        node.setInjector(inj.get());
        faults.setInjector(inj.get());
        rt.setInjector(inj.get());
    }
    if (cfg.trace.enabled) {
        trc = std::make_unique<trace::Tracer>(cfg.trace);
        trc->setClock(&rt.clock());
        node.setTracer(trc.get());
        as.setTracer(trc.get());  // wires the HMM mirror too
        faults.setTracer(trc.get());
        rt.setTracer(trc.get());  // wires the perf model too
        if (inj)
            inj->setTracer(trc.get());
    }
    if (cfg.policy.enabled) {
        pol = std::make_unique<policy::PolicyEngine>(cfg.policy);
        if (pol && trc)
            pol->setTracer(trc.get());
        as.setPolicyEngine(pol.get(), 0);
        registry.setPolicyEngine(pol.get());
        rt.setPolicyEngine(pol.get(), 0);
    }
}

std::unique_ptr<Process>
System::createProcess()
{
    std::uint64_t pid = nextPid++;
    vm::VirtAddr base = kProcessVaBase + (pid - 1) * kProcessVaSpan;
    return std::make_unique<Process>(*this, pid, base,
                                     base + kProcessVaSpan);
}

void
System::registerProcess(Process *process)
{
    procs.push_back(process);
}

void
System::unregisterProcess(Process *process)
{
    auto it = std::find(procs.begin(), procs.end(), process);
    if (it == procs.end())
        panic("unregisterProcess: unknown process");
    procs.erase(it);
}

void
System::finalizeAudit()
{
    if (!aud)
        return;
    std::vector<bool> mapped(node.totalFrames(), false);
    // The shards are shared: the mapped set is the union over the
    // primary address space and every live serving process.
    auto fold = [&](const vm::AddressSpace &space) {
        space.systemTable().forEachRun(
            0, ~0ull, [&](const vm::PteRun &run) {
                for (std::uint64_t i = 0; i < run.len; ++i) {
                    vm::FrameId f = run.frameOf(run.vpn + i);
                    if (f < mapped.size())
                        mapped[f] = true;
                }
            });
        // ReplicateRO replica frames live outside every page table
        // (only the home copy is mapped); they still legitimately own
        // their frames until munmap, so mark them before the leak
        // scan.
        space.forEachVma([&](const vm::Vma &vma) {
            for (const auto &range : vma.replicaRanges) {
                for (std::uint64_t i = 0; i < range.count; ++i) {
                    if (range.base + i < mapped.size())
                        mapped[range.base + i] = true;
                }
            }
        });
    };
    as.auditMirrorConsistency(*aud);
    fold(as);
    for (Process *proc : procs) {
        proc->addressSpace().auditMirrorConsistency(*aud);
        fold(proc->addressSpace());
    }
    node.auditLeaks(mapped, *aud);
    if (node.numSockets() > 1)
        node.auditCrossShard(mapped, *aud);
}

} // namespace upm::core

#include "core/system.hh"

namespace upm::core {

System::System(const SystemConfig &config)
    : cfg(config), apuTopo(cfg), geom(cfg.geometry),
      frameAlloc(geom, cfg.frames), as(frameAlloc, backingStore),
      faults(cfg.faults), registry(as),
      rt(as, registry, faults, cfg, geom), numaMeminfo(frameAlloc),
      processRss(as)
{
    if (cfg.audit.enabled) {
        aud = std::make_unique<audit::Auditor>(cfg.audit);
        frameAlloc.setAuditor(aud.get());
        as.setAuditor(aud.get());
        registry.setAuditor(aud.get());
        rt.setAuditor(aud.get());
    }
    if (cfg.inject.enabled) {
        inj = std::make_unique<inject::Injector>(cfg.inject);
        frameAlloc.setInjector(inj.get());
        faults.setInjector(inj.get());
        rt.setInjector(inj.get());
    }
    if (cfg.trace.enabled) {
        trc = std::make_unique<trace::Tracer>(cfg.trace);
        trc->setClock(&rt.clock());
        frameAlloc.setTracer(trc.get());
        as.setTracer(trc.get());  // wires the HMM mirror too
        faults.setTracer(trc.get());
        rt.setTracer(trc.get());  // wires the perf model too
        if (inj)
            inj->setTracer(trc.get());
    }
}

void
System::finalizeAudit()
{
    if (!aud)
        return;
    as.auditMirrorConsistency(*aud);
    std::vector<bool> mapped(geom.numFrames(), false);
    as.systemTable().forEachRun(0, ~0ull, [&](const vm::PteRun &run) {
        for (std::uint64_t i = 0; i < run.len; ++i) {
            vm::FrameId f = run.frameOf(run.vpn + i);
            if (f < mapped.size())
                mapped[f] = true;
        }
    });
    frameAlloc.auditLeaks(mapped, *aud);
}

} // namespace upm::core

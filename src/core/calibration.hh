/**
 * @file
 * Calibration constants for the MI300A model, with provenance.
 *
 * Every constant is either taken from AMD's CDNA3 documentation or
 * fitted to a *first-order* measurement published in the paper
 * (Wahlgren et al., IISWC 2025). Second-order results -- allocator
 * orderings, TLB-miss counts, fault plateaus, Infinity Cache bias --
 * are NOT encoded here; they emerge from the modelled mechanisms that
 * consume these constants. EXPERIMENTS.md records, per figure, which
 * shapes are emergent and which anchors are calibrated.
 */

#ifndef UPM_CORE_CALIBRATION_HH
#define UPM_CORE_CALIBRATION_HH

#include "audit/config.hh"
#include "cache/atomic_unit.hh"
#include "fabric/fabric.hh"
#include "inject/config.hh"
#include "cache/directory.hh"
#include "cache/hierarchy.hh"
#include "cache/infinity_cache.hh"
#include "common/units.hh"
#include "mem/frame_allocator.hh"
#include "mem/geometry.hh"
#include "policy/policy.hh"
#include "trace/tracer.hh"
#include "vm/fault_handler.hh"

namespace upm::core {

/** GPU-side latency/capacity anchors (paper Fig. 2, GPU curves). */
struct GpuCacheCalib
{
    std::uint64_t l1Capacity = 32 * KiB;   //!< per-CU vector cache
    SimTime l1Latency = 57.0;              //!< 1 KiB plateau
    std::uint64_t l2Capacity = 4 * MiB;    //!< per-XCD shared L2
    SimTime l2Latency = 105.0;             //!< 1 MiB plateau (100-108)
    SimTime icLatency = 210.0;             //!< 128 MiB plateau (205-218)
    SimTime hbmLatency = 340.0;            //!< 4 GiB plateau (333-350)
};

/** CPU-side latency/capacity anchors (paper Fig. 2, CPU curves). */
struct CpuCacheCalib
{
    std::uint64_t l1Capacity = 32 * KiB;
    SimTime l1Latency = 1.0;               //!< 1 KiB measurement
    std::uint64_t l2Capacity = 1 * MiB;
    SimTime l2Latency = 4.0;
    std::uint64_t l3Capacity = 96 * MiB;   //!< shared across CCDs
    SimTime l3Latency = 25.0;
    SimTime icLatency = 145.0;             //!< IC as seen from the CPU
    SimTime hbmLatency = 240.0;            //!< 2 GiB plateau (236-241)
};

/** Bandwidth model anchors (paper Fig. 3 and Section 4.3). */
struct BandwidthCalib
{
    /** GPU CU issue-limited streaming peak: hipMalloc TRIAD hits
     *  3.5-3.6 TB/s; 3.65 leaves headroom for the (tiny) residual TLB
     *  stall hipMalloc still pays. */
    double gpuIssuePeak = tbps(3.65);
    /** HBM3 peak (8 stacks x 5.3 TB/s aggregate, CDNA3 white paper). */
    double memPeak = tbps(5.3);
    /**
     * Aggregate UTCL2/page-walker throughput (misses per ns). Fitted so
     * a 4 KiB-fragment allocation (one UTCL1 miss per ~2 KiB block of
     * streamed data) lands at the paper's 2.1-2.2 TB/s.
     */
    double gpuWalkerThroughput = 2.56;
    /** UTCL1 translation-request granularity while streaming (bytes):
     *  one request per wavefront-pair block. */
    double gpuBytesPerTranslation = 2048.0;
    /**
     * Bandwidth multiplier when the GPU runs in XNACK (retry) mode for
     * on-demand memory: the retry machinery costs ~13% (paper: 1.8-1.9
     * vs 2.1-2.2 TB/s for otherwise identical 4 KiB-fragment memory).
     */
    double gpuXnackFactor = 0.87;
    /** Uncached (managed-static) GPU path: latency-bound at 103 GB/s. */
    double gpuUncachedBw = gbps(103.0);

    /** Per-core CPU streaming bandwidth (TRIAD, one Zen4 core). 21
     *  GB/s reproduces case B's 9-thread peak (9 x 21 > 181 GB/s cap)
     *  while case A saturates its 208 GB/s cap from 10 threads on. */
    double cpuPerCoreBw = gbps(21.0);
    /** Fabric cap for all-core CPU streaming (case A: 208 GB/s). */
    double cpuFabricCap = gbps(208.0);
    /**
     * Bandwidth the CPU loses on fully scattered (CPU first-touch
     * malloc) placements: case B's 181 GB/s vs case A's 208 GB/s.
     */
    double cpuScatterBwLoss = 0.13;
    /**
     * Infinity Cache hit-rate loss on fully scattered placements
     * (set-conflict bias; the paper's Section 5.4 hypothesis). 1.0
     * reproduces malloc's missing IC benefit in the Fig. 2 CPU curves.
     */
    double icScatterPenalty = 1.0;
    /**
     * Case-B oversubscription decline: past the peak thread count,
     * biased placements lose this fraction of bandwidth per extra
     * thread (paper: 181 -> 173-176 GB/s from 9 to 24 threads).
     */
    double cpuBiasedDeclinePerThread = 0.0027;
    unsigned cpuBiasedPeakThreads = 9;

    // Legacy hipMemcpy paths (paper Section 4.3).
    double sdmaPageableBw = gbps(58.0);
    double sdmaPinnedBw = gbps(64.0);
    double blitH2DBw = gbps(850.0);
    double blitD2DBw = gbps(1900.0);
    SimTime memcpyBaseOverhead = 10.0 * microseconds;
};

/** Compute-rate anchors for kernel timing. */
struct ComputeCalib
{
    double gpuFp64Flops = 61.3e3;   //!< FLOP per ns (61.3 TFLOP/s)
    double gpuFp32Flops = 122.6e3;
    double cpuCoreFlops = 50.0;     //!< FLOP per ns per core
    SimTime kernelLaunchOverhead = 8.0 * microseconds;
    SimTime kernelTeardown = 2.0 * microseconds;
};

/** GPU TLB structure anchors (paper Fig. 9 methodology). */
struct GpuTlbCalib
{
    unsigned utcl1Entries = 32;
    /** Max pages one UTCL1 entry covers (4 MiB reach cap): fitted so
     *  hipMalloc's TRIAD miss count lands ~7x below the 4 KiB-fragment
     *  allocators, as rocprof measures (158 K vs 1.0-1.2 M). */
    unsigned utcl1MaxSpanPages = 1024;
    SimTime utcl1MissLatency = 400.0;
    unsigned utcl2Entries = 1024;
    unsigned utcl2Assoc = 8;
};

/**
 * Coherence/atomics throughput model anchors (paper Fig. 4/5). The
 * per-event transfer costs live in cache::CoherenceCosts; these are
 * the workload-side constants of the histogram benchmark model.
 */
struct AtomicsCalib
{
    /** Non-atomic work per CPU loop iteration (rng + index), ns. */
    double cpuWork = 3.0;
    /** CAS-loop cost multiplier for FP64 on x86 (no native FP atomic;
     *  lock cmpxchgq loop vs lock incq). */
    double casFactor = 2.2;
    /** The CAS collision window spans load+FP-add+cmpxchg, several
     *  times the atomic itself. */
    double casWindowFactor = 3.0;
    /** Per-line serialization service time on the CPU side, ns. */
    double cpuLineService = 10.0;
    /** Lines a core keeps dirty in its private caches (L1-sized). */
    double cpuDirtyWindowLines = 512.0;
    /** Private (per-core) L2: arrays above this live in shared levels
     *  where co-run warming matters. */
    std::uint64_t cpuPrivateL2Bytes = 1 * MiB;
    /** Per-XCD GPU L2; same role on the GPU side. */
    std::uint64_t gpuL2PerXcdBytes = 4 * MiB;
    /** Cost of a clean line from the shared level (L3-adjacent), ns. */
    double cpuCleanNear = 30.0;
    /** Aggregate CPU L2 capacity: "1 M fits in L2" threshold. */
    std::uint64_t cpuAggL2Bytes = 24 * MiB;

    /** Per-thread GPU atomic loop latency, L2-resident data, ns. The
     *  loop is dependent (xorwow -> atomicAdd), so a thread sustains
     *  roughly one op per round trip. */
    double gpuOpLatencyL2 = 1100.0;
    /** Same with data fetched from HBM. */
    double gpuOpLatencyMem = 1400.0;
    /** How long a line stays "hot" at an atomic unit after a GPU op
     *  (ns): the units write back promptly, so only lines touched
     *  within this window cost the CPU a GPU-ownership transfer. */
    double gpuLineHoldNs = 50.0;
    /** Aggregate GPU L2 capacity threshold. */
    std::uint64_t gpuAggL2Bytes = 24 * MiB;

    /** Infinity Cache warming from co-running agents: fractional
     *  reduction of the clean-fetch cost for IC-resident arrays
     *  (models the paper's counter-intuitive 1M co-run speedup). */
    double icWarmBoost = 0.15;
    /** Matching aggregate-cap boost on the GPU side. */
    double gpuCoRunBoost = 0.02;
    /** Amplification of CPU line-steals on GPU atomic pipelines. */
    double stealAmplification = 3.0;
    /** Fixed-point iteration damping / count. */
    double damping = 0.5;
    unsigned iterations = 40;
};

/** Full system configuration bundle. */
struct SystemConfig
{
    mem::MemGeometryConfig geometry;
    mem::FrameAllocatorConfig frames;
    cache::InfinityCacheConfig infinityCache;
    cache::CoherenceCosts coherence;
    cache::AtomicUnitConfig atomics;
    vm::FaultCosts faults;
    GpuCacheCalib gpuCache;
    CpuCacheCalib cpuCache;
    BandwidthCalib bandwidth;
    ComputeCalib compute;
    GpuTlbCalib gpuTlb;
    AtomicsCalib atomicsModel;
    /** UPMSan invariant auditor + race detector (off by default). */
    audit::AuditConfig audit;
    /** UPMInject deterministic fault injection (off by default). */
    inject::InjectConfig inject;
    /** UPMTrace structured event bus (off by default). */
    trace::TraceConfig trace;
    /** Inter-APU xGMI link calibration (used when numSockets > 1). */
    fabric::FabricConfig fabric;
    /** UPMPolicy placement / migration / eviction (off by default). */
    policy::PolicyConfig policy;

    unsigned numCus = 228;      //!< compute units (6 XCDs)
    unsigned numXcds = 6;
    unsigned numCpuCores = 24;  //!< 3 CCDs x 8 Zen4 cores
    unsigned numCcds = 3;       //!< CCDs per APU (Fig. 1)
    unsigned numIods = 4;       //!< IODs per APU (Fig. 1)
    /**
     * APUs on the node. 1 models the paper's single MI300A; 4 models
     * the Inter-APU paper's real deployment node. Each socket brings
     * its own `geometry`-sized HBM shard, Apu topology and GPU
     * page-table/IC state, joined by the `fabric` link model.
     */
    unsigned numSockets = 1;
    bool xnack = false;
    bool sdmaEnabled = true;

    /** Scale note: real APU capacity is 128 GiB; see geometry. */
    std::uint64_t realCapacityBytes = 128 * GiB;
};

} // namespace upm::core

#endif // UPM_CORE_CALIBRATION_HH

#include "core/atomics_probe.hh"

#include <algorithm>
#include <cmath>

#include "exec/task_pool.hh"

namespace upm::core {

namespace {

/** Histogram lines for an element count (8 B elements, 64 B lines). */
double
linesOf(std::uint64_t elems)
{
    return std::max<double>(1.0, static_cast<double>(elems) * 8.0 / 64.0);
}

} // namespace

double
AtomicsProbe::cpuOpCost(std::uint64_t elems, unsigned threads,
                        AtomicType type, double cpu_rate,
                        double gpu_rate) const
{
    double lines = linesOf(elems);
    std::uint64_t bytes = elems * 8;
    double t_threads = static_cast<double>(threads);

    double total_rate = cpu_rate + gpu_rate;
    double q_gpu = total_rate > 0.0 ? gpu_rate / total_rate : 0.0;

    // Where does the line live when this op arrives?
    //  - still dirty in some CPU core's private cache (recency window)
    //  - resident at a GPU L2 atomic unit
    //  - clean in the shared level / Infinity Cache / memory
    double h_cpu = (1.0 - q_gpu) *
                   std::min(1.0, t_threads * cal.cpuDirtyWindowLines /
                                     lines);
    // Lines the GPU touched recently enough to still sit at an atomic
    // unit; older GPU updates have been written back and cost a plain
    // clean fetch.
    double gpu_hot_lines = gpu_rate * cal.gpuLineHoldNs;
    double h_gpu = q_gpu * std::min(1.0, gpu_hot_lines / lines);
    double p_self = h_cpu / t_threads;
    double p_other_core = h_cpu - p_self;
    double p_cold = std::max(0.0, 1.0 - p_self - p_other_core - h_gpu);

    double t_clean = bytes <= cal.cpuAggL2Bytes ? cal.cpuCleanNear
                                                : coh.cpuFromMemory;
    // Co-running agents keep IC-resident arrays warm (Fig. 5's 1M
    // speedup): fetches from the shared level get cheaper.
    if (gpu_rate > 0.0 && bytes > cal.cpuPrivateL2Bytes &&
        bytes <= 256 * MiB) {
        t_clean *= 1.0 - cal.icWarmBoost;
    }
    // For cache-resident arrays, a "cold" line the GPU touched comes
    // back through the far shared level rather than the near one; for
    // larger arrays the line has reached the Infinity Cache either
    // way, so co-run warming (above) dominates instead.
    if (bytes <= cal.cpuPrivateL2Bytes)
        t_clean = (1.0 - q_gpu) * t_clean + q_gpu * coh.cpuFromMemory;

    double t_atomic = p_self * coh.cpuLocalHit +
                      p_other_core * coh.cpuFromOtherCore +
                      h_gpu * coh.cpuFromGpu + p_cold * t_clean;

    if (type == AtomicType::Fp64) {
        // CAS loop: slower even uncontended, and collisions retry.
        t_atomic *= cal.casFactor;
        double rate_others =
            cpu_rate * (t_threads - 1.0) / std::max(1.0, t_threads) +
            gpu_rate;
        double p_col = std::min(
            0.75,
            rate_others * t_atomic * cal.casWindowFactor / lines);
        t_atomic /= (1.0 - p_col);
    }

    // Per-line serialization wait, driven by everyone *else*'s ops on
    // the line (a thread's own ops serialize naturally).
    double rate_other =
        cpu_rate * (t_threads - 1.0) / std::max(1.0, t_threads) +
        gpu_rate;
    double lambda_line = rate_other / lines;
    double wait = unit.queueWait(lambda_line, cal.cpuLineService);

    return cal.cpuWork + t_atomic + wait;
}

double
AtomicsProbe::gpuRate(std::uint64_t elems, unsigned gpu_threads,
                      double cpu_rate, double gpu_rate_prev) const
{
    double lines = linesOf(elems);
    std::uint64_t bytes = elems * 8;
    double n = static_cast<double>(gpu_threads);

    double w = bytes <= cal.gpuAggL2Bytes ? cal.gpuOpLatencyL2
                                          : cal.gpuOpLatencyMem;

    // Per-line congestion: average queue depth times service gap.
    double s = unit.lineServiceTime();
    w += n / lines * s;

    double issue = n / w;

    // CPU steals lines out of the atomic units; while a stolen line is
    // being refetched, GPU ops queued on it stall, shaving issue rate.
    if (cpu_rate > 0.0) {
        double steal_frac =
            std::min(0.5, cpu_rate * coh.gpuFromCpu *
                              cal.stealAmplification / lines);
        issue *= 1.0 - steal_frac;
    }
    double l2_fraction = bytes <= cal.gpuAggL2Bytes ? 1.0 : 0.0;
    double agg_cap = unit.aggregateCap(l2_fraction);
    if (cpu_rate > 0.0 && bytes > cal.gpuL2PerXcdBytes &&
        bytes <= 256 * MiB) {
        agg_cap *= 1.0 + cal.gpuCoRunBoost;
    }
    double line_cap = lines * unit.config().maxUtilization / s;

    double rate = std::min({issue, agg_cap, line_cap});
    // Damp against the previous iterate for fixed-point stability.
    if (gpu_rate_prev > 0.0)
        rate = cal.damping * rate + (1.0 - cal.damping) * gpu_rate_prev;
    return rate;
}

void
AtomicsProbe::solve(std::uint64_t elems, unsigned cpu_threads,
                    unsigned gpu_threads, AtomicType type,
                    double &cpu_rate, double &gpu_rate) const
{
    cpu_rate = 0.0;
    gpu_rate = 0.0;
    double t_threads = static_cast<double>(cpu_threads);

    for (unsigned i = 0; i < cal.iterations; ++i) {
        double new_cpu = 0.0;
        if (cpu_threads > 0) {
            double t_op =
                cpuOpCost(elems, cpu_threads, type, cpu_rate, gpu_rate);
            new_cpu = t_threads / t_op;
            // A line changes owner at most once per cross-core
            // transfer; with more threads, fewer ops hit a self-owned
            // line, so tiny arrays anti-scale (Fig. 4, 1 element).
            double p_self = 1.0 / t_threads;
            double xfer_fraction = 1.0 - p_self;
            if (xfer_fraction > 0.0) {
                double line_cap = linesOf(elems) /
                                  (coh.cpuFromOtherCore * xfer_fraction);
                new_cpu = std::min(new_cpu, line_cap);
            }
            if (cpu_rate > 0.0) {
                new_cpu = cal.damping * new_cpu +
                          (1.0 - cal.damping) * cpu_rate;
            }
        }
        double new_gpu = 0.0;
        if (gpu_threads > 0)
            new_gpu = gpuRate(elems, gpu_threads, cpu_rate, gpu_rate);
        cpu_rate = new_cpu;
        gpu_rate = new_gpu;
    }
}

double
AtomicsProbe::cpuThroughput(std::uint64_t elems, unsigned threads,
                            AtomicType type) const
{
    double cpu_rate, gpu_rate;
    solve(elems, threads, 0, type, cpu_rate, gpu_rate);
    return cpu_rate;
}

double
AtomicsProbe::gpuThroughput(std::uint64_t elems, unsigned gpu_threads,
                            AtomicType type) const
{
    // The GPU implements FP64 atomics natively; type does not matter.
    (void)type;
    double cpu_rate, gpu_rate;
    solve(elems, 0, gpu_threads, type, cpu_rate, gpu_rate);
    return gpu_rate;
}

HybridAtomicsResult
AtomicsProbe::hybrid(std::uint64_t elems, unsigned cpu_threads,
                     unsigned gpu_threads, AtomicType type) const
{
    HybridAtomicsResult result;
    solve(elems, cpu_threads, gpu_threads, type, result.cpuOpsPerNs,
          result.gpuOpsPerNs);
    double cpu_iso = cpuThroughput(elems, cpu_threads, type);
    double gpu_iso = gpuThroughput(elems, gpu_threads, type);
    result.cpuRelative =
        cpu_iso > 0.0 ? result.cpuOpsPerNs / cpu_iso : 1.0;
    result.gpuRelative =
        gpu_iso > 0.0 ? result.gpuOpsPerNs / gpu_iso : 1.0;
    return result;
}

std::vector<std::vector<double>>
AtomicsProbe::throughputGrid(bool gpu_side,
                             const std::vector<std::uint64_t> &elem_counts,
                             const std::vector<unsigned> &thread_counts,
                             AtomicType type) const
{
    const std::size_t cols = thread_counts.size();
    std::vector<std::vector<double>> grid(
        elem_counts.size(), std::vector<double>(cols, 0.0));
    exec::globalPool().parallelFor(
        elem_counts.size() * cols, [&](std::size_t cell) {
            std::size_t s = cell / cols;
            std::size_t t = cell % cols;
            grid[s][t] = gpu_side
                             ? gpuThroughput(elem_counts[s],
                                             thread_counts[t], type)
                             : cpuThroughput(elem_counts[s],
                                             thread_counts[t], type);
        });
    return grid;
}

std::vector<std::vector<HybridAtomicsResult>>
AtomicsProbe::hybridGrid(std::uint64_t elems,
                         const std::vector<unsigned> &cpu_counts,
                         const std::vector<unsigned> &gpu_counts,
                         AtomicType type) const
{
    const std::size_t cols = gpu_counts.size();
    std::vector<std::vector<HybridAtomicsResult>> grid(
        cpu_counts.size(), std::vector<HybridAtomicsResult>(cols));
    exec::globalPool().parallelFor(
        cpu_counts.size() * cols, [&](std::size_t cell) {
            grid[cell / cols][cell % cols] =
                hybrid(elems, cpu_counts[cell / cols],
                       gpu_counts[cell % cols], type);
        });
    return grid;
}

} // namespace upm::core

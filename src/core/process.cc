#include "core/process.hh"

#include <vector>

#include "core/system.hh"

namespace upm::core {

namespace {

/** Per-process fault-jitter seed: derived from the pid through
 *  SplitMix64 so every process prices faults from its own stream,
 *  reproducibly, without touching the System's handler. */
std::uint64_t
faultSeedFor(std::uint64_t pid)
{
    SplitMix64 mix(0xfa17'0000'0000'0000ull ^ pid);
    return mix.next();
}

} // namespace

Process::Process(System &system, std::uint64_t pid, vm::VirtAddr va_base,
                 vm::VirtAddr va_end)
    : sys(system), id(pid),
      as(system.nodeMemory().shard(0), backingStore),
      faults(system.config().faults, faultSeedFor(pid)), registry(as),
      rt(as, registry, faults, system.config(), system.geometry())
{
    as.setVaWindow(va_base, va_end);
    rt.setCalendar(&calendar);
    // Mirror the System's own wiring (system.cc): shards + fabric on
    // multi-socket nodes, then the shared aud/inj/trc hooks. The node
    // itself already holds those hooks; only per-process components
    // are wired here.
    if (sys.numSockets() > 1) {
        as.setNode(&sys.nodeMemory());
        faults.setFabric(sys.fabric());
        rt.perf().setFabric(sys.fabric(),
                            sys.nodeMemory().framesPerSocket());
        std::vector<const cache::InfinityCache *> caches;
        caches.reserve(sys.numSockets());
        for (unsigned s = 0; s < sys.numSockets(); ++s)
            caches.push_back(&sys.socket(s).icache);
        rt.perf().setSocketCaches(std::move(caches));
    }
    if (audit::Auditor *aud = sys.auditor()) {
        as.setAuditor(aud);
        registry.setAuditor(aud);
        rt.setAuditor(aud);
    }
    if (inject::Injector *inj = sys.injector()) {
        faults.setInjector(inj);
        rt.setInjector(inj);
    }
    if (trace::Tracer *tr = sys.tracer()) {
        as.setTracer(tr); // wires the HMM mirror too
        faults.setTracer(tr);
        rt.setTracer(tr); // wires the perf model too
    }
    if (policy::PolicyEngine *pol = sys.policyEngine()) {
        // The pid namespaces this process's pages in engine PageKeys
        // (the primary address space is space 0).
        as.setPolicyEngine(pol, pid);
        registry.setPolicyEngine(pol);
        rt.setPolicyEngine(pol, pid);
    }
    sys.registerProcess(this);
}

Process::~Process()
{
    reclaim();
    sys.unregisterProcess(this);
}

std::uint64_t
Process::residentPages() const
{
    std::uint64_t pages = as.systemTable().presentCount();
    as.forEachVma([&](const vm::Vma &vma) {
        for (const auto &replica : vma.replicaRanges)
            pages += replica.count;
    });
    return pages;
}

std::uint64_t
Process::reclaim()
{
    std::uint64_t pages = residentPages();
    rt.releaseAll();
    // Stragglers: VMAs mapped directly on the address space (arena
    // experiments, partially unwound crashes). munmapChecked routes
    // every frame through the same audited free paths.
    std::vector<vm::VirtAddr> bases;
    as.forEachVma(
        [&](const vm::Vma &vma) { bases.push_back(vma.base); });
    for (vm::VirtAddr base : bases)
        as.munmapChecked(base);
    return pages;
}

} // namespace upm::core

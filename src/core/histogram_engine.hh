/**
 * @file
 * Execution-driven histogram engine: the paper's coherence benchmark
 * as an actual simulation rather than a fixed-point model.
 *
 * Every simulated CPU thread draws indices with minstd and every GPU
 * thread with XORWOW (exactly the generators the paper's kernels use),
 * really increments the histogram in backing memory, and pays per-op
 * costs from the coherence directory plus per-line serialization
 * enforced with line-availability timestamps. Throughput is ops over
 * makespan. The test suite cross-validates this engine against the
 * analytic AtomicsProbe: the two must agree on every ordering the
 * paper reports, which guards both implementations.
 */

#ifndef UPM_CORE_HISTOGRAM_ENGINE_HH
#define UPM_CORE_HISTOGRAM_ENGINE_HH

#include <cstdint>
#include <vector>

#include "core/atomics_probe.hh"
#include "core/system.hh"

namespace upm::core {

/**
 * Agent scheduling implementation. Both pick the least-advanced agent
 * (lowest index among same-clock ties) and are byte-identical; Scan is
 * the O(ops x agents) reference loop kept for differential testing and
 * the speedup baseline, Calendar the O(ops x log agents) TimeHeap port.
 */
enum class HistogramImpl : std::uint8_t {
    Calendar,
    Scan,
};

/** Histogram run configuration. */
struct HistogramParams
{
    std::uint64_t elems = 1024;
    unsigned cpuThreads = 0;
    unsigned gpuThreads = 0;
    AtomicType type = AtomicType::Uint64;
    /** Atomic updates performed per simulated thread. */
    unsigned opsPerThread = 200;
    std::uint64_t seed = 42;
    HistogramImpl impl = HistogramImpl::Calendar;
};

/** Outcome of one run. */
struct HistogramResult
{
    double cpuOpsPerNs = 0.0;
    double gpuOpsPerNs = 0.0;
    /** Sum over the functional histogram (must equal total ops). */
    std::uint64_t histogramSum = 0;
    std::uint64_t totalOps = 0;
    /** Ops that waited on a busy line. */
    std::uint64_t lineConflicts = 0;
};

/** The engine; stateless apart from the bound system. */
class HistogramEngine
{
  public:
    explicit HistogramEngine(System &system) : sys(system) {}

    /** Run one configuration on a fresh unified histogram buffer. */
    HistogramResult run(const HistogramParams &params);

  private:
    System &sys;
};

} // namespace upm::core

#endif // UPM_CORE_HISTOGRAM_ENGINE_HH

/**
 * @file
 * APU topology description (Fig. 1 of the paper): six XCDs with 38 CUs
 * each (228 presented as one device), three CCDs with 8 Zen4 cores,
 * four IODs carrying the HBM3 interfaces and Infinity Fabric.
 */

#ifndef UPM_CORE_APU_HH
#define UPM_CORE_APU_HH

#include <string>

#include "core/calibration.hh"

namespace upm::core {

/** Static topology of one MI300A. */
class Apu
{
  public:
    explicit Apu(const SystemConfig &config);

    unsigned numCus() const { return cfg.numCus; }
    unsigned numXcds() const { return cfg.numXcds; }
    unsigned cusPerXcd() const { return cfg.numCus / cfg.numXcds; }
    unsigned numCpuCores() const { return cfg.numCpuCores; }
    unsigned numCcds() const { return 3; }
    unsigned coresPerCcd() const { return cfg.numCpuCores / 3; }
    unsigned numIods() const { return 4; }

    /** XCD that owns compute unit @p cu. */
    unsigned xcdOfCu(unsigned cu) const;

    /** CCD that owns CPU core @p core. */
    unsigned ccdOfCore(unsigned core) const;

    /** Human-readable topology summary (examples print this). */
    std::string description() const;

    const SystemConfig &config() const { return cfg; }

  private:
    SystemConfig cfg;
};

} // namespace upm::core

#endif // UPM_CORE_APU_HH

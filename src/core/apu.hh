/**
 * @file
 * APU topology description (Fig. 1 of the paper): six XCDs with 38 CUs
 * each (228 presented as one device), three CCDs with 8 Zen4 cores,
 * four IODs carrying the HBM3 interfaces and Infinity Fabric. All
 * counts are config-driven; non-divisible geometries are rejected with
 * Status::InvalidValue at validation.
 */

#ifndef UPM_CORE_APU_HH
#define UPM_CORE_APU_HH

#include <string>

#include "common/status.hh"
#include "core/calibration.hh"

namespace upm::core {

/** Static topology of one MI300A socket. */
class Apu
{
  public:
    /** @param socket this APU's socket id on the node (0-based). */
    explicit Apu(const SystemConfig &config, unsigned socket = 0);

    /**
     * Check a topology before building it: CU count must divide across
     * XCDs and CPU cores across CCDs -- a remainder would silently
     * truncate coresPerCcd()/cusPerXcd(). @return Status::InvalidValue
     * for zero or non-divisible counts, Status::Success otherwise.
     */
    static Status validate(const SystemConfig &config);

    unsigned numCus() const { return cfg.numCus; }
    unsigned numXcds() const { return cfg.numXcds; }
    unsigned cusPerXcd() const { return cfg.numCus / cfg.numXcds; }
    unsigned numCpuCores() const { return cfg.numCpuCores; }
    unsigned numCcds() const { return cfg.numCcds; }
    unsigned coresPerCcd() const { return cfg.numCpuCores / cfg.numCcds; }
    unsigned numIods() const { return cfg.numIods; }

    /** This APU's socket id on the (possibly multi-APU) node. */
    unsigned socket() const { return socketId; }

    /** XCD that owns compute unit @p cu. */
    unsigned xcdOfCu(unsigned cu) const;

    /** CCD that owns CPU core @p core. */
    unsigned ccdOfCore(unsigned core) const;

    /** Human-readable topology summary (examples print this). */
    std::string description() const;

    const SystemConfig &config() const { return cfg; }

  private:
    SystemConfig cfg;
    unsigned socketId = 0;
};

} // namespace upm::core

#endif // UPM_CORE_APU_HH

/**
 * @file
 * Memory-side Infinity Cache model.
 *
 * CDNA3's Infinity Cache is 256 MiB, partitioned into slices mapped
 * 1:1 onto the 128 memory channels, and sits on the memory side of the
 * fabric (it is not coherent and absorbs no snoops). Because a physical
 * page lives on one stack (4 KiB stack interleave) and spreads over
 * that stack's 16 channels, the per-slice load of an allocation is
 * determined by the *stack placement* of its frames. A biased placement
 * oversubscribes some slices while leaving others idle, which reduces
 * the effective cache capacity -- the paper's explanation (Section 5.4)
 * for why CPU-first-touch malloc memory cannot exploit the full
 * Infinity Cache while hipMalloc memory can.
 */

#ifndef UPM_CACHE_INFINITY_CACHE_HH
#define UPM_CACHE_INFINITY_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"
#include "mem/geometry.hh"

namespace upm::cache {

/** Static parameters; defaults model the MI300A. */
struct InfinityCacheConfig
{
    std::uint64_t capacityBytes = 256 * MiB;
    SimTime hitLatency = 145.0;        //!< from the CPU side, ns
    double peakBandwidth = 17200.0;    //!< bytes/ns (17.2 TB/s)
};

/**
 * Analytic slice-level model. Given the frame placement of a working
 * set, computes the steady-state hit fraction for uniform access: each
 * slice keeps its hottest `sliceCapacity` bytes, so the hit fraction is
 * sum_c min(cap_c, load_c) / total_load.
 */
class InfinityCache
{
  public:
    InfinityCache(const mem::MemGeometry &geometry,
                  const InfinityCacheConfig &config = {});

    /**
     * Hit fraction for a working set whose pages are the given frames.
     * Assumes each page's traffic spreads evenly over its stack's
     * channels (true for any access pattern coarser than 256 B).
     */
    double hitFraction(const std::vector<mem::FrameId> &frames) const;

    /**
     * Hit fraction from a per-stack page-count histogram (cheaper when
     * the caller already tracks placement) for a working set of
     * `sum(load) * kPageSize` bytes.
     */
    double hitFractionFromStackLoad(
        const std::vector<std::uint64_t> &pages_per_stack) const;

    /**
     * Bytes of the working set this cache covers: per stack,
     * min(stack load, stack capacity), summed in stack order. The
     * building block hitFractionFromStackLoad() divides by total load;
     * multi-socket callers sum coveredBytes() across each socket's own
     * cache instead, so each socket's 256 MiB covers only the frames
     * its shard owns.
     */
    double coveredBytes(
        const std::vector<std::uint64_t> &pages_per_stack) const;

    std::uint64_t capacity() const { return cfg.capacityBytes; }
    std::uint64_t sliceCapacity() const { return sliceBytes; }
    SimTime hitLatency() const { return cfg.hitLatency; }
    double peakBandwidth() const { return cfg.peakBandwidth; }

  private:
    const mem::MemGeometry &geom;
    InfinityCacheConfig cfg;
    std::uint64_t sliceBytes;
};

} // namespace upm::cache

#endif // UPM_CACHE_INFINITY_CACHE_HH

/**
 * @file
 * Functional set-associative cache model with LRU replacement.
 *
 * Used directly for small structures that need per-access fidelity
 * (TLB backing tests, directory experiments) and as the reference
 * implementation that the analytic hit-fraction models in
 * `hierarchy.hh` are validated against in the test suite.
 */

#ifndef UPM_CACHE_CACHE_HH
#define UPM_CACHE_CACHE_HH

#include <cstdint>
#include <vector>

namespace upm::trace {
class Tracer;
}

namespace upm::cache {

/** Static parameters of one cache. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned assoc = 8;
    unsigned lineSize = 64;
};

/**
 * A set-associative, write-allocate, LRU cache keyed by physical
 * address. Purely functional: answers hit/miss and keeps counters.
 */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheConfig &config);

    /**
     * Look up @p addr, allocating the line on miss.
     * @return true on hit.
     */
    bool access(std::uint64_t addr);

    /** Look up without allocating. */
    bool probe(std::uint64_t addr) const;

    /** Invalidate one line if present. @return true if it was there. */
    bool invalidate(std::uint64_t addr);

    /** Drop all contents (the paper's benches flush 256 MiB). */
    void flush();

    std::uint64_t hits() const { return hitCount; }
    std::uint64_t misses() const { return missCount; }
    void resetStats() { hitCount = missCount = 0; }

    unsigned numSets() const { return sets; }
    const CacheConfig &config() const { return cfg; }

    /** Attach UPMTrace: emits CacheHit / CacheFill (miss) / CacheEvict
     *  (valid-victim replacement) per access(). */
    void setTracer(trace::Tracer *tracer) { tr = tracer; }

  private:
    struct Way
    {
        std::uint64_t tag = 0;
        std::uint64_t lru = 0;
        bool valid = false;
    };

    std::uint64_t lineOf(std::uint64_t addr) const;
    unsigned setOf(std::uint64_t line) const;

    CacheConfig cfg;
    unsigned sets;
    std::vector<Way> ways;  // sets * assoc, row-major by set
    std::uint64_t stamp = 0;
    std::uint64_t hitCount = 0;
    std::uint64_t missCount = 0;
    /** UPMTrace hook; null (no overhead) unless tracing is on. */
    trace::Tracer *tr = nullptr;
};

} // namespace upm::cache

#endif // UPM_CACHE_CACHE_HH

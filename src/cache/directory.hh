/**
 * @file
 * Cacheline ownership directory for the CPU-GPU coherence model.
 *
 * The MI300A implements CPU atomics by taking exclusive ownership of
 * the line in the core's private L1 (x86 `lock` semantics), while GPU
 * atomics execute at dedicated atomic units in the shared L2 and do not
 * move the line to the requesting CU. The directory tracks, per line,
 * which agent last took ownership, and prices an ownership transfer
 * according to where the line currently lives. These costs are the
 * microscopic inputs of the coherence benchmark model (paper Fig. 4/5).
 */

#ifndef UPM_CACHE_DIRECTORY_HH
#define UPM_CACHE_DIRECTORY_HH

#include <cstdint>
#include <unordered_map>

#include "common/units.hh"

namespace upm::audit {
class Auditor;
}

namespace upm::cache {

/** Who currently owns a line. */
enum class Owner : std::uint8_t {
    None,     //!< in memory / Infinity Cache only
    CpuCore,  //!< exclusive in some CPU core's private cache
    GpuL2,    //!< resident at a GPU L2 atomic unit
};

/** Calibrated transfer costs (ns); see core/calibration.hh for values. */
struct CoherenceCosts
{
    SimTime cpuLocalHit = 5.0;        //!< lock op on an owned line
    SimTime cpuFromOtherCore = 60.0;  //!< cross-core transfer via L3
    SimTime cpuFromGpu = 240.0;       //!< pull line out of GPU L2
    SimTime cpuFromMemory = 110.0;    //!< line was in memory/IC
    SimTime gpuLocalOp = 4.0;         //!< atomic-unit op, line resident
    SimTime gpuFromCpu = 180.0;       //!< invalidate CPU owner first
    SimTime gpuFromMemory = 70.0;     //!< fetch into L2 first
};

/**
 * Sparse line-ownership map. Functional component: given a stream of
 * atomic requests it returns the transfer cost of each and mutates
 * ownership; the Monte-Carlo atomics probe drives it with sampled
 * request streams.
 */
class Directory
{
  public:
    explicit Directory(const CoherenceCosts &costs = {}) : cost(costs) {}

    /**
     * CPU core @p core performs an atomic on @p line.
     * @return the modelled cost of acquiring ownership.
     */
    SimTime cpuAtomic(std::uint64_t line, unsigned core);

    /**
     * A GPU atomic on @p line (executed at the L2 atomic unit).
     * @return the modelled cost excluding per-line serialization,
     *         which AtomicUnitModel prices separately.
     */
    SimTime gpuAtomic(std::uint64_t line);

    /** Model capacity eviction: line falls back to memory. */
    void evict(std::uint64_t line);

    /** Current owner of @p line (None if never touched / evicted). */
    Owner ownerOf(std::uint64_t line) const;

    /** Owning core id; only meaningful when ownerOf() == CpuCore. */
    unsigned owningCore(std::uint64_t line) const;

    const CoherenceCosts &costs() const { return cost; }

    /**
     * Attach UPMSan. Every ownership transfer is mirrored into the
     * auditor's dirty-line shadow (release previous owner, then take
     * exclusive), so a directory transition that skipped the
     * invalidation shows up as DirtyInTwoCaches.
     */
    void setAuditor(audit::Auditor *auditor) { aud = auditor; }

  private:
    struct Entry
    {
        Owner owner = Owner::None;
        unsigned core = 0;
    };

    CoherenceCosts cost;
    std::unordered_map<std::uint64_t, Entry> lines;
    /** UPMSan hook; null (no overhead) unless auditing is enabled. */
    audit::Auditor *aud = nullptr;
};

} // namespace upm::cache

#endif // UPM_CACHE_DIRECTORY_HH

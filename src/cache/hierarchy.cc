#include "cache/hierarchy.hh"

#include <algorithm>

#include "common/log.hh"

namespace upm::cache {

CacheHierarchy::CacheHierarchy(std::vector<CacheLevelSpec> levels,
                               SimTime infinity_cache_latency,
                               SimTime memory_latency)
    : specs(std::move(levels)), icLatency(infinity_cache_latency),
      memLatency(memory_latency)
{
    std::uint64_t prev = 0;
    for (const auto &level : specs) {
        if (level.capacityBytes <= prev)
            fatal("cache levels must have strictly growing capacity");
        prev = level.capacityBytes;
    }
}

std::vector<double>
CacheHierarchy::levelFractions(std::uint64_t working_set,
                               double ic_hit_fraction) const
{
    if (working_set == 0)
        working_set = 1;
    ic_hit_fraction = std::clamp(ic_hit_fraction, 0.0, 1.0);

    std::vector<double> fractions;
    fractions.reserve(specs.size() + 2);
    double remaining = 1.0;
    for (const auto &level : specs) {
        double cum_hit = std::min(
            1.0, static_cast<double>(level.capacityBytes) /
                     static_cast<double>(working_set));
        double level_hit = std::min(remaining, cum_hit - (1.0 - remaining));
        level_hit = std::max(0.0, level_hit);
        fractions.push_back(level_hit);
        remaining -= level_hit;
    }
    double ic = remaining * ic_hit_fraction;
    fractions.push_back(ic);
    fractions.push_back(remaining - ic);
    return fractions;
}

SimTime
CacheHierarchy::avgLatency(std::uint64_t working_set,
                           double ic_hit_fraction) const
{
    auto fractions = levelFractions(working_set, ic_hit_fraction);
    SimTime total = 0.0;
    for (std::size_t i = 0; i < specs.size(); ++i)
        total += fractions[i] * specs[i].hitLatency;
    total += fractions[specs.size()] * icLatency;
    total += fractions[specs.size() + 1] * memLatency;
    return total;
}

} // namespace upm::cache

/**
 * @file
 * GPU L2 atomic-unit serialization model.
 *
 * CDNA3 executes GPU atomics at dedicated units in the shared L2; ops
 * on the *same line* serialize at the unit while ops on different lines
 * proceed in parallel (bounded by aggregate L2/memory throughput). We
 * model a line's unit as a deterministic-service queue and use the
 * M/D/1 waiting-time approximation to turn per-line utilization into a
 * queueing delay; the same helper prices CPU-side lock contention.
 */

#ifndef UPM_CACHE_ATOMIC_UNIT_HH
#define UPM_CACHE_ATOMIC_UNIT_HH

#include <cstdint>

#include "common/units.hh"

namespace upm::cache {

/** Throughput parameters of the atomic-unit array. */
struct AtomicUnitConfig
{
    /** Minimum gap between two atomics to one line (ns). */
    SimTime lineServiceTime = 4.0;
    /** Aggregate ops/ns across all units when data is L2-resident. */
    double aggregateRateL2 = 22.0;
    /** Aggregate ops/ns when every op must fetch from HBM. */
    double aggregateRateMem = 7.0;
    /** Utilization clamp to keep the queue formula finite. */
    double maxUtilization = 0.97;
};

/**
 * Stateless pricing helpers for atomic throughput composition. The
 * atomics probe computes per-line arrival rates and asks this model
 * for queueing delay and aggregate caps.
 */
class AtomicUnitModel
{
  public:
    explicit AtomicUnitModel(const AtomicUnitConfig &config = {})
        : cfg(config)
    {}

    /**
     * M/D/1 mean waiting time for arrival rate @p lambda (ops/ns) on a
     * server with service time @p service (ns). Utilization is clamped
     * to `maxUtilization`.
     */
    SimTime queueWait(double lambda, SimTime service) const;

    /** Per-line service gap. */
    SimTime lineServiceTime() const { return cfg.lineServiceTime; }

    /**
     * Aggregate throughput ceiling (ops/ns) given the fraction of ops
     * whose line is resident in L2 versus fetched from memory.
     */
    double aggregateCap(double l2_resident_fraction) const;

    const AtomicUnitConfig &config() const { return cfg; }

  private:
    AtomicUnitConfig cfg;
};

} // namespace upm::cache

#endif // UPM_CACHE_ATOMIC_UNIT_HH

#include "cache/atomic_unit.hh"

#include <algorithm>

namespace upm::cache {

SimTime
AtomicUnitModel::queueWait(double lambda, SimTime service) const
{
    if (lambda <= 0.0 || service <= 0.0)
        return 0.0;
    double rho = std::min(lambda * service, cfg.maxUtilization);
    // M/D/1: W = rho * s / (2 * (1 - rho)).
    return rho * service / (2.0 * (1.0 - rho));
}

double
AtomicUnitModel::aggregateCap(double l2_resident_fraction) const
{
    double f = std::clamp(l2_resident_fraction, 0.0, 1.0);
    // Harmonic blend: each op consumes 1/rate of the shared pipeline.
    double inv = f / cfg.aggregateRateL2 + (1.0 - f) / cfg.aggregateRateMem;
    return 1.0 / inv;
}

} // namespace upm::cache

#include "cache/infinity_cache.hh"

#include <algorithm>

#include "common/log.hh"

namespace upm::cache {

InfinityCache::InfinityCache(const mem::MemGeometry &geometry,
                             const InfinityCacheConfig &config)
    : geom(geometry), cfg(config)
{
    if (cfg.capacityBytes % geom.numChannels() != 0)
        fatal("Infinity Cache capacity must divide across channels");
    sliceBytes = cfg.capacityBytes / geom.numChannels();
}

double
InfinityCache::hitFraction(const std::vector<mem::FrameId> &frames) const
{
    if (frames.empty())
        return 1.0;
    return hitFractionFromStackLoad(geom.stackLoad(frames));
}

double
InfinityCache::hitFractionFromStackLoad(
    const std::vector<std::uint64_t> &pages_per_stack) const
{
    double covered = coveredBytes(pages_per_stack);
    double total = 0.0;
    for (std::uint64_t pages : pages_per_stack)
        total += static_cast<double>(pages) * mem::kPageSize;
    if (total == 0.0)
        return 1.0;
    return covered / total;
}

double
InfinityCache::coveredBytes(
    const std::vector<std::uint64_t> &pages_per_stack) const
{
    if (pages_per_stack.size() != geom.numStacks())
        panic("stack load vector has %zu entries, expected %u",
              pages_per_stack.size(), geom.numStacks());

    unsigned channels_per_stack = geom.numChannels() / geom.numStacks();
    double stack_capacity =
        static_cast<double>(sliceBytes) * channels_per_stack;

    double covered = 0.0;
    for (std::uint64_t pages : pages_per_stack) {
        double load = static_cast<double>(pages) * mem::kPageSize;
        covered += std::min(load, stack_capacity);
    }
    return covered;
}

} // namespace upm::cache

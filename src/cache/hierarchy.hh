/**
 * @file
 * Per-agent cache hierarchy latency model.
 *
 * The pointer-chase latency probe (paper Fig. 2) measures dependent
 * loads uniformly distributed over a ring of a given size. For such a
 * reference stream, an LRU cache of capacity C serving a working set S
 * keeps the hottest C bytes resident, so the hit fraction is
 * min(1, C/S) per level (validated against the functional model in the
 * tests). The hierarchy walks the levels from the core outwards and
 * composes an average access latency; the final (memory-side) level is
 * the Infinity Cache whose hit fraction is placement-dependent and is
 * supplied by the caller.
 */

#ifndef UPM_CACHE_HIERARCHY_HH
#define UPM_CACHE_HIERARCHY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"

namespace upm::cache {

/** One level of an agent-side hierarchy. */
struct CacheLevelSpec
{
    std::string name;
    std::uint64_t capacityBytes;
    SimTime hitLatency;
};

/**
 * Agent-side hierarchy (CPU: L1/L2/L3; GPU: L1/L2) plus the two
 * memory-side terms: Infinity Cache latency and HBM latency.
 */
class CacheHierarchy
{
  public:
    CacheHierarchy(std::vector<CacheLevelSpec> levels,
                   SimTime infinity_cache_latency, SimTime memory_latency);

    /**
     * Fraction of accesses served by each level for a uniform-random
     * working set of @p working_set bytes, given the memory-side
     * Infinity Cache serves @p ic_hit_fraction of the traffic that
     * misses all agent-side levels.
     *
     * @return per-level fractions, then the IC fraction, then memory;
     *         sums to 1.
     */
    std::vector<double> levelFractions(std::uint64_t working_set,
                                       double ic_hit_fraction) const;

    /** Average dependent-load latency for the same scenario. */
    SimTime avgLatency(std::uint64_t working_set,
                       double ic_hit_fraction) const;

    const std::vector<CacheLevelSpec> &levels() const { return specs; }
    SimTime infinityCacheLatency() const { return icLatency; }
    SimTime memoryLatency() const { return memLatency; }

  private:
    std::vector<CacheLevelSpec> specs;
    SimTime icLatency;
    SimTime memLatency;
};

} // namespace upm::cache

#endif // UPM_CACHE_HIERARCHY_HH

#include "cache/directory.hh"

#include "audit/auditor.hh"

namespace upm::cache {

SimTime
Directory::cpuAtomic(std::uint64_t line, unsigned core)
{
    Entry &entry = lines[line];
    SimTime t;
    switch (entry.owner) {
      case Owner::CpuCore:
        t = (entry.core == core) ? cost.cpuLocalHit : cost.cpuFromOtherCore;
        break;
      case Owner::GpuL2:
        t = cost.cpuFromGpu;
        break;
      case Owner::None:
      default:
        t = cost.cpuFromMemory;
        break;
    }
    if (aud != nullptr) {
        // The priced transfer invalidates the previous owner before
        // the core takes the line exclusive.
        if (entry.owner != Owner::None &&
            (entry.owner != Owner::CpuCore || entry.core != core)) {
            aud->onLineReleased(line);
        }
        aud->onLineOwned(line, core);
    }
    entry.owner = Owner::CpuCore;
    entry.core = core;
    return t;
}

SimTime
Directory::gpuAtomic(std::uint64_t line)
{
    Entry &entry = lines[line];
    SimTime t;
    switch (entry.owner) {
      case Owner::GpuL2:
        t = cost.gpuLocalOp;
        break;
      case Owner::CpuCore:
        t = cost.gpuFromCpu;
        break;
      case Owner::None:
      default:
        t = cost.gpuFromMemory;
        break;
    }
    if (aud != nullptr) {
        if (entry.owner == Owner::CpuCore)
            aud->onLineReleased(line);
        aud->onLineOwned(line, audit::kGpuOwner);
    }
    entry.owner = Owner::GpuL2;
    return t;
}

void
Directory::evict(std::uint64_t line)
{
    auto it = lines.find(line);
    if (it != lines.end()) {
        if (aud != nullptr && it->second.owner != Owner::None) {
            // Capacity eviction writes the line back, then the IC may
            // absorb it; writeback precedes the fill.
            aud->onLineReleased(line);
            aud->onIcFill(line);
        }
        it->second.owner = Owner::None;
    }
}

Owner
Directory::ownerOf(std::uint64_t line) const
{
    auto it = lines.find(line);
    return it == lines.end() ? Owner::None : it->second.owner;
}

unsigned
Directory::owningCore(std::uint64_t line) const
{
    auto it = lines.find(line);
    return it == lines.end() ? 0 : it->second.core;
}

} // namespace upm::cache

#include "cache/cache.hh"

#include "common/log.hh"
#include "common/units.hh"
#include "trace/tracer.hh"

namespace upm::cache {

SetAssocCache::SetAssocCache(const CacheConfig &config) : cfg(config)
{
    if (cfg.lineSize == 0 || !isPow2(cfg.lineSize))
        fatal("cache line size must be a power of two");
    if (cfg.assoc == 0)
        fatal("cache associativity must be nonzero");
    std::uint64_t lines = cfg.sizeBytes / cfg.lineSize;
    if (lines == 0 || lines % cfg.assoc != 0)
        fatal("cache size %llu not divisible into %u-way sets",
              static_cast<unsigned long long>(cfg.sizeBytes), cfg.assoc);
    sets = static_cast<unsigned>(lines / cfg.assoc);
    if (!isPow2(sets))
        fatal("cache set count must be a power of two");
    ways.resize(static_cast<std::size_t>(sets) * cfg.assoc);
}

std::uint64_t
SetAssocCache::lineOf(std::uint64_t addr) const
{
    return addr / cfg.lineSize;
}

unsigned
SetAssocCache::setOf(std::uint64_t line) const
{
    return static_cast<unsigned>(line & (sets - 1));
}

bool
SetAssocCache::access(std::uint64_t addr)
{
    std::uint64_t line = lineOf(addr);
    unsigned set = setOf(line);
    Way *base = &ways[static_cast<std::size_t>(set) * cfg.assoc];
    ++stamp;

    Way *victim = base;
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == line) {
            way.lru = stamp;
            ++hitCount;
            if (tr != nullptr)
                tr->emit(trace::EventKind::CacheHit, line);
            return true;
        }
        if (!way.valid) {
            victim = &way;
        } else if (victim->valid && way.lru < victim->lru) {
            victim = &way;
        }
    }
    if (tr != nullptr) {
        if (victim->valid) {
            tr->emit(trace::EventKind::CacheEvict, victim->tag, line);
        }
        tr->emit(trace::EventKind::CacheFill, line);
    }
    victim->valid = true;
    victim->tag = line;
    victim->lru = stamp;
    ++missCount;
    return false;
}

bool
SetAssocCache::probe(std::uint64_t addr) const
{
    std::uint64_t line = lineOf(addr);
    unsigned set = setOf(line);
    const Way *base = &ways[static_cast<std::size_t>(set) * cfg.assoc];
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        if (base[w].valid && base[w].tag == line)
            return true;
    }
    return false;
}

bool
SetAssocCache::invalidate(std::uint64_t addr)
{
    std::uint64_t line = lineOf(addr);
    unsigned set = setOf(line);
    Way *base = &ways[static_cast<std::size_t>(set) * cfg.assoc];
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        if (base[w].valid && base[w].tag == line) {
            base[w].valid = false;
            return true;
        }
    }
    return false;
}

void
SetAssocCache::flush()
{
    for (auto &way : ways)
        way.valid = false;
}

} // namespace upm::cache

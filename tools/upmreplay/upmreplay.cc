/**
 * @file
 * upmreplay: re-drive the memory system from a packed UPMTrace ring
 * dump (the "UPMT" files RingBufferSink::dump writes) without
 * re-running the simulation.
 *
 * Two jobs:
 *
 *  1. Equivalence oracle. `--json` emits the folded metrics in the
 *     bench JSON schema, so CI can diff a replay against the live
 *     run's metrics with scripts/bench_compare.py --metrics-only.
 *     The fold is byte-exact: trace values are summed in sequence
 *     order, the same order the live accumulators summed in, so every
 *     double must match bit for bit.
 *
 *  2. A/B cost sweeps. `--fault-cost-scale F` reprices the recorded
 *     fault stream under scaled FaultCosts -- answering "what if fault
 *     service were F x slower/faster" from one recorded run, in
 *     milliseconds instead of a re-simulation.
 *
 * Usage:
 *   upmreplay DUMP.upmt [--json PATH] [--bench-id NAME] [--frames N]
 *             [--fault-cost-scale F] [--quiet]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "sched/replay.hh"
#include "trace/event.hh"
#include "vm/fault_handler.hh"

namespace upm {
namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s DUMP.upmt [options]\n"
        "  --json PATH           write folded metrics in the bench JSON\n"
        "                        schema (diff vs a live run with\n"
        "                        scripts/bench_compare.py --metrics-only)\n"
        "  --bench-id NAME       bench id for --json (default:\n"
        "                        replay_equiv; must match the live side)\n"
        "  --frames N            physical frame count of the traced\n"
        "                        system (busy map grows on demand when\n"
        "                        omitted)\n"
        "  --fault-cost-scale F  reprice the recorded fault stream with\n"
        "                        steady costs scaled by F (A/B lever)\n"
        "  --quiet               suppress the human-readable summary\n",
        argv0);
    return 2;
}

int
run(int argc, char **argv)
{
    std::string dump_path;
    std::string json_path;
    std::string bench_id = "replay_equiv";
    std::uint64_t total_frames = 0;
    double cost_scale = 1.0;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--bench-id") == 0 &&
                   i + 1 < argc) {
            bench_id = argv[++i];
        } else if (std::strcmp(argv[i], "--frames") == 0 &&
                   i + 1 < argc) {
            total_frames = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--fault-cost-scale") == 0 &&
                   i + 1 < argc) {
            cost_scale = std::strtod(argv[++i], nullptr);
        } else if (std::strcmp(argv[i], "--quiet") == 0) {
            quiet = true;
        } else if (argv[i][0] == '-') {
            return usage(argv[0]);
        } else if (dump_path.empty()) {
            dump_path = argv[i];
        } else {
            return usage(argv[0]);
        }
    }
    if (dump_path.empty())
        return usage(argv[0]);

    std::vector<trace::TraceEvent> events;
    std::string error;
    if (sched::loadDump(dump_path, events, &error) != Status::Success) {
        std::fprintf(stderr, "upmreplay: %s: %s\n", dump_path.c_str(),
                     error.c_str());
        return 1;
    }

    sched::TraceReplayer rp(total_frames);
    rp.applyAll(events);
    const sched::ReplayMetrics &m = rp.metrics();

    if (!quiet) {
        std::printf("upmreplay: %s\n", dump_path.c_str());
        std::printf("  events applied      %llu (last at %.17g ns)\n",
                    static_cast<unsigned long long>(m.eventsApplied),
                    m.lastEventNs);
        for (unsigned l = 0; l < trace::kNumLayers; ++l) {
            if (m.perLayer[l] == 0)
                continue;
            std::printf("    layer %-8s %llu\n",
                        trace::layerName(
                            static_cast<trace::Layer>(l)),
                        static_cast<unsigned long long>(m.perLayer[l]));
        }
        std::printf("  alloc calls         %llu ok, %llu failed, "
                    "%llu freed\n",
                    static_cast<unsigned long long>(m.allocCalls),
                    static_cast<unsigned long long>(m.failedAllocCalls),
                    static_cast<unsigned long long>(m.freeCalls));
        std::printf("  memcpy              %llu calls, %s, %.17g ns\n",
                    static_cast<unsigned long long>(m.memcpyCalls),
                    bench::fmtBytes(m.bytesCopied).c_str(),
                    m.memcpyTimeNs);
        std::printf("  kernels             %llu, %.17g ns\n",
                    static_cast<unsigned long long>(m.kernelsLaunched),
                    m.kernelTimeNs);
        std::printf("  fault service       %llu calls, %llu pages, "
                    "%.17g ns\n",
                    static_cast<unsigned long long>(m.faultServiceCalls),
                    static_cast<unsigned long long>(m.faultServicePages),
                    m.faultServiceTimeNs);
        std::printf("  frames              %llu allocated, %llu freed, "
                    "%llu busy at end\n",
                    static_cast<unsigned long long>(m.framesAllocated),
                    static_cast<unsigned long long>(m.framesFreed),
                    static_cast<unsigned long long>(rp.busyCount()));
        std::printf("  pages present       %llu\n",
                    static_cast<unsigned long long>(
                        rp.pageTable().presentCount()));
    }

    if (cost_scale != 1.0) {
        vm::FaultCosts scaled;
        scaled.cpuSteady *= cost_scale;
        scaled.gpuMajorSteady *= cost_scale;
        scaled.gpuMinorSteady *= cost_scale;
        SimTime repriced = sched::recostFaultNs(events, scaled);
        std::printf("  recost (x%.3g)       %.17g ns fault service "
                    "(single-core local model)\n",
                    cost_scale, repriced);
    }

    if (!json_path.empty()) {
        bench::JsonReporter report(bench_id, json_path);
        report.point()
            .metric("events", m.eventsApplied)
            .metric("last_event_ns", m.lastEventNs)
            .metric("alloc_calls", m.allocCalls)
            .metric("failed_alloc_calls", m.failedAllocCalls)
            .metric("free_calls", m.freeCalls)
            .metric("memcpy_calls", m.memcpyCalls)
            .metric("bytes_copied", m.bytesCopied)
            .metric("memcpy_time_ns", m.memcpyTimeNs)
            .metric("kernels_launched", m.kernelsLaunched)
            .metric("kernel_time_ns", m.kernelTimeNs)
            .metric("fault_service_calls", m.faultServiceCalls)
            .metric("fault_service_pages", m.faultServicePages)
            .metric("fault_service_time_ns", m.faultServiceTimeNs)
            .metric("busy_frames", rp.busyCount())
            .metric("present_pages", rp.pageTable().presentCount());
        report.write();
        if (!quiet)
            std::printf("  json                %s\n", json_path.c_str());
    }
    return 0;
}

} // namespace
} // namespace upm

int
main(int argc, char **argv)
{
    return upm::run(argc, argv);
}

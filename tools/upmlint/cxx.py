"""Minimal C++ lexer and scope model for UPMLint.

UPMLint's checkers need just enough syntactic structure to reason
about the repo's contracts: a comment/string-aware token stream, the
brace-nesting of each token, and per-function block trees for the
dominance-style hook check. This is deliberately not a full C++
parser -- the repo's consistent gem5-style layout makes a token-level
analysis reliable -- and when the libclang Python bindings are
available the driver cross-checks the status checker against the real
AST (see upmlint.py).

Suppressions: a `// upmlint: <checker>-ok` comment on the same line
(or the line immediately above) silences one diagnostic and is
collected here so every checker honours it uniformly.
"""

import bisect
import re
from dataclasses import dataclass, field


# Token kinds.
IDENT = "ident"
NUMBER = "number"
STRING = "string"
CHAR = "char"
PUNCT = "punct"

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_NUMBER_RE = re.compile(r"\.?[0-9](?:[0-9a-zA-Z_.']|[eEpP][+-])*")
# Longest-first so `->*`, `<<=`, `...` lex as one token.
_PUNCT_RE = re.compile(
    r"->\*|<<=|>>=|\.\.\.|::|->|\+\+|--|<<|>>|<=|>=|==|!=|&&|\|\||"
    r"[-+*/%^&|~!<>=,?:;.(){}\[\]#\\@]"
)
_SUPPRESS_RE = re.compile(r"upmlint:\s*([a-z-]+)-ok")


@dataclass
class Token:
    kind: str
    text: str
    line: int
    col: int
    depth: int = 0  # brace-nesting depth after lexing


@dataclass
class SourceFile:
    path: str
    text: str
    tokens: list = field(default_factory=list)
    # line -> set of checker names suppressed on that line
    suppressions: dict = field(default_factory=dict)
    line_offsets: list = field(default_factory=list)

    def suppressed(self, checker, line):
        for probe in (line, line + 1):
            if checker in self.suppressions.get(probe, set()):
                return True
        return False


def lex(path, text):
    """Tokenize C++ source, recording comment-based suppressions."""
    src = SourceFile(path=path, text=text)
    offsets = [0]
    for m in re.finditer("\n", text):
        offsets.append(m.end())
    src.line_offsets = offsets

    def linecol(pos):
        line = bisect.bisect_right(offsets, pos)
        return line, pos - offsets[line - 1] + 1

    def note_suppression(comment, pos):
        for m in _SUPPRESS_RE.finditer(comment):
            line, _ = linecol(pos)
            src.suppressions.setdefault(line, set()).add(m.group(1))

    i, n = 0, len(text)
    depth = 0
    while i < n:
        c = text[i]
        if c in " \t\r\n":
            i += 1
            continue
        if text.startswith("//", i):
            end = text.find("\n", i)
            end = n if end == -1 else end
            note_suppression(text[i:end], i)
            i = end
            continue
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            end = n - 2 if end == -1 else end
            note_suppression(text[i:end], i)
            i = end + 2
            continue
        if text.startswith('R"', i):
            # Raw string: R"delim( ... )delim"
            m = re.match(r'R"([^(\s]*)\(', text[i:])
            if m:
                closer = ")" + m.group(1) + '"'
                end = text.find(closer, i + m.end())
                end = n if end == -1 else end + len(closer)
                line, col = linecol(i)
                src.tokens.append(Token(STRING, text[i:end], line, col, depth))
                i = end
                continue
        if c == '"' or (c == "'" and not _looks_like_digit_sep(text, i)):
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            line, col = linecol(i)
            kind = STRING if quote == '"' else CHAR
            src.tokens.append(Token(kind, text[i : j + 1], line, col, depth))
            i = j + 1
            continue
        m = _IDENT_RE.match(text, i)
        if m:
            line, col = linecol(i)
            src.tokens.append(Token(IDENT, m.group(), line, col, depth))
            i = m.end()
            continue
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            m = _NUMBER_RE.match(text, i)
            line, col = linecol(i)
            src.tokens.append(Token(NUMBER, m.group(), line, col, depth))
            i = m.end()
            continue
        m = _PUNCT_RE.match(text, i)
        if m:
            tok = m.group()
            if tok == "{":
                depth += 1
            line, col = linecol(i)
            src.tokens.append(Token(PUNCT, tok, line, col, depth))
            if tok == "}":
                depth = max(0, depth - 1)
            i = m.end()
            continue
        i += 1  # unknown byte: skip
    return src


def _looks_like_digit_sep(text, i):
    """C++14 digit separator: 1'000'000."""
    return i > 0 and text[i - 1].isdigit() and i + 1 < len(text) and \
        text[i + 1].isdigit()


def match_paren(tokens, open_idx):
    """Index of the `)` matching tokens[open_idx] == `(`; -1 if none."""
    pairs = {"(": ")", "[": "]", "{": "}"}
    opener = tokens[open_idx].text
    closer = pairs[opener]
    depth = 0
    for j in range(open_idx, len(tokens)):
        t = tokens[j].text
        if t == opener:
            depth += 1
        elif t == closer:
            depth -= 1
            if depth == 0:
                return j
    return -1


def match_brace_back(tokens, close_idx):
    """Index of the `{` matching tokens[close_idx] == `}`; -1 if none."""
    depth = 0
    for j in range(close_idx, -1, -1):
        t = tokens[j].text
        if t == "}":
            depth += 1
        elif t == "{":
            depth -= 1
            if depth == 0:
                return j
    return -1


@dataclass
class Block:
    """One `{ ... }` region with the tokens of its controlling clause.

    `control` holds the tokens between the controlling keyword and the
    opening brace (for `if (x) {` that is `if ( x )`); empty for bare
    blocks and function bodies.
    """

    open_idx: int
    close_idx: int
    control: list = field(default_factory=list)
    parent: object = None


def enclosing_blocks(tokens, idx):
    """Blocks (innermost first) whose braces enclose token `idx`.

    Walks outwards by brace matching; for each block, collects the
    controlling clause tokens immediately before its `{`.
    """
    blocks = []
    j = idx
    while True:
        # Find the nearest unmatched `{` before j.
        depth = 0
        open_idx = -1
        k = j
        while k >= 0:
            t = tokens[k].text
            if t == "}":
                depth += 1
            elif t == "{":
                if depth == 0:
                    open_idx = k
                    break
                depth -= 1
            k -= 1
        if open_idx < 0:
            break
        blocks.append(Block(open_idx, -1, _control_clause(tokens, open_idx)))
        j = open_idx - 1
    return blocks


def _control_clause(tokens, open_idx):
    """Tokens of the `if (...)` / `while (...)` clause before a `{`."""
    j = open_idx - 1
    if j < 0 or tokens[j].text != ")":
        # `else {`, `do {`, function body, class body, bare block.
        if j >= 0 and tokens[j].kind == IDENT and tokens[j].text == "else":
            return [tokens[j]]
        return []
    # Walk back over the parenthesized condition.
    depth = 0
    k = j
    while k >= 0:
        t = tokens[k].text
        if t == ")":
            depth += 1
        elif t == "(":
            depth -= 1
            if depth == 0:
                break
        k -= 1
    if k <= 0:
        return []
    head = tokens[k - 1]
    if head.kind == IDENT and head.text in ("if", "while", "for", "switch"):
        return tokens[k - 1 : j + 1]
    return []


def statement_start(tokens, idx):
    """Index of the first token of the statement containing `idx`."""
    j = idx - 1
    while j >= 0:
        t = tokens[j].text
        if t in (";", "{", "}", ":") and tokens[j].kind == PUNCT:
            # `:` only ends a statement for labels/access specifiers;
            # approximate by requiring the next token to start a line.
            if t == ":" and j > 0 and tokens[j - 1].text in ("public",
                                                            "private",
                                                            "protected",
                                                            "default",
                                                            "case"):
                return j + 1
            if t != ":":
                return j + 1
        j -= 1
    return 0

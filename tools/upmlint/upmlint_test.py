#!/usr/bin/env python3
"""Fixture suite for UPMLint.

Every fixture line tagged `// upmlint-expect: <checker>` must yield
exactly one diagnostic of that checker at that file:line, and no
untagged line may fire at all. This pins both directions: the
checkers keep catching the seeded violation classes, and they do not
regress into noise on the guarded/clean forms sitting next to them.

Run directly (`python3 tools/upmlint/upmlint_test.py`) or via ctest
(registered as `upmlint_fixtures` in tests/CMakeLists.txt).
"""

import os
import re
import sys
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, HERE)

import upmlint  # noqa: E402
from cxx import lex  # noqa: E402

FIXTURE_ROOT = os.path.join(HERE, "fixtures")
EXPECT_RE = re.compile(r"upmlint-expect:\s*([a-z-]+)")

# The acceptance floor: the fixture suite must seed at least this many
# violations overall and per checker class.
MIN_TOTAL = 12
MIN_PER_CHECKER = 3


def expected_findings():
    """(path, line, checker) tuples harvested from fixture comments."""
    expected = set()
    for dirpath, _, filenames in os.walk(FIXTURE_ROOT):
        for fn in sorted(filenames):
            if not fn.endswith((".cc", ".hh")):
                continue
            path = os.path.join(dirpath, fn)
            rel = os.path.relpath(path, FIXTURE_ROOT)
            with open(path, encoding="utf-8") as f:
                for lineno, line in enumerate(f, start=1):
                    for m in EXPECT_RE.finditer(line):
                        expected.add((rel, lineno, m.group(1)))
    return expected


def actual_findings():
    findings = upmlint.run(FIXTURE_ROOT, ["src"], ["src"],
                           sorted(upmlint.CHECKERS), use_libclang="off")
    return {(f.path, f.line, f.checker) for f in findings}


class FixtureSuite(unittest.TestCase):
    def test_every_seeded_violation_is_caught(self):
        expected = expected_findings()
        actual = actual_findings()
        missed = expected - actual
        self.assertFalse(
            missed,
            "seeded violations NOT caught:\n  " +
            "\n  ".join("%s:%d [%s]" % m for m in sorted(missed)))

    def test_no_findings_on_untagged_lines(self):
        expected = expected_findings()
        actual = actual_findings()
        spurious = actual - expected
        self.assertFalse(
            spurious,
            "diagnostics on clean fixture lines:\n  " +
            "\n  ".join("%s:%d [%s]" % s for s in sorted(spurious)))

    def test_fixture_floor(self):
        expected = expected_findings()
        self.assertGreaterEqual(len(expected), MIN_TOTAL)
        by_checker = {}
        for _, _, checker in expected:
            by_checker[checker] = by_checker.get(checker, 0) + 1
        for checker in upmlint.CHECKERS:
            self.assertGreaterEqual(
                by_checker.get(checker, 0), MIN_PER_CHECKER,
                "fixture suite seeds too few '%s' violations" % checker)

    def test_diagnostics_carry_file_and_line(self):
        findings = upmlint.run(FIXTURE_ROOT, ["src"], ["src"],
                               sorted(upmlint.CHECKERS),
                               use_libclang="off")
        for f in findings:
            self.assertTrue(f.path.endswith(".cc"))
            self.assertGreater(f.line, 0)
            self.assertTrue(f.message)


class LexerSanity(unittest.TestCase):
    def test_strings_and_comments_are_opaque(self):
        src = lex("t.cc", 'int x; // rand() in a comment\n'
                          'const char *s = "rand()";\n')
        idents = [t.text for t in src.tokens if t.kind == "ident"]
        self.assertNotIn("rand", idents)

    def test_suppression_collected(self):
        src = lex("t.cc", "f();  // upmlint: status-ok (teardown)\n")
        self.assertTrue(src.suppressed("status", 1))
        self.assertFalse(src.suppressed("hooks", 1))

    def test_depth_tracking(self):
        src = lex("t.cc", "void f() { if (x) { y(); } }\n")
        closing = [t for t in src.tokens if t.text == "}"]
        self.assertEqual([t.depth for t in closing], [2, 1])


if __name__ == "__main__":
    unittest.main(verbosity=2)

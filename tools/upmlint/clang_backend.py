"""Optional libclang AST backend for the status-discipline checker.

The token-level checker in checkers.py is the portable baseline; this
module, used when the `clang.cindex` Python bindings are importable
(CI installs python3-clang pinned to the same LLVM as the lint job),
re-derives "ignored status return" findings from the real AST so
macro-heavy or template call sites the lexer cannot see are still
caught. Findings are merged and de-duplicated by the driver.
"""

import os

try:
    from clang import cindex
    HAVE_CINDEX = True
except ImportError:  # pragma: no cover - exercised only without clang
    HAVE_CINDEX = False

from checkers import Finding


class Unavailable(RuntimeError):
    pass


STATUS_TYPES = ("upm::Status", "Status", "hipError_t",
                "upm::hip::hipError_t")


def _compile_args(db, path):
    cmds = db.getCompileCommands(path)
    if not cmds:
        return None
    args = list(cmds[0].arguments)[1:]
    cleaned = []
    skip = False
    for a in args:
        if skip:
            skip = False
            continue
        if a in ("-o", "-c"):
            skip = a == "-o"
            continue
        if os.path.basename(a) == os.path.basename(path):
            continue
        cleaned.append(a)
    return cleaned


def check_status_ast(root, files, compdb_dir):
    if not HAVE_CINDEX:
        raise Unavailable("python3-clang not installed")
    if not compdb_dir or not os.path.exists(
            os.path.join(compdb_dir, "compile_commands.json")):
        raise Unavailable("no compile_commands.json (pass --compdb)")
    try:
        index = cindex.Index.create()
        db = cindex.CompilationDatabase.fromDirectory(compdb_dir)
    except cindex.LibclangError as err:
        raise Unavailable(str(err))

    findings = []
    for path in files:
        if not path.endswith((".cc", ".cpp")):
            continue
        args = _compile_args(db, path)
        if args is None:
            continue
        tu = index.parse(path, args=args)
        rel = os.path.relpath(path, root)
        findings.extend(_scan_tu(tu, path, rel))
    return findings


def _scan_tu(tu, path, rel):
    """A CALL_EXPR that is a direct child of a CompoundStmt is a full
    expression statement: its result is discarded."""
    out = []
    for cur in tu.cursor.walk_preorder():
        if cur.kind != cindex.CursorKind.COMPOUND_STMT:
            continue
        if cur.location.file is None or str(cur.location.file) != path:
            continue
        for child in cur.get_children():
            if child.kind != cindex.CursorKind.CALL_EXPR:
                continue
            rtype = child.type.get_canonical().spelling
            callee = child.referenced
            name = callee.spelling if callee is not None else ""
            statusish = any(rtype.endswith(t) for t in STATUS_TYPES) or \
                (name.startswith("try") and rtype != "void")
            if not statusish:
                continue
            out.append(Finding(
                rel, child.location.line, "status",
                "(libclang) return value of '%s' is ignored" % name))
    return out

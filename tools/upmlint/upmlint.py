#!/usr/bin/env python3
"""UPMLint: repo-specific static analysis for the UPM simulator.

Enforces the four machine-checkable contracts the simulator's eras
rest on (DESIGN.md section 12): status-discipline, determinism,
hook-discipline and lock-discipline. Runs anywhere python3 runs; when
the libclang Python bindings are installed (CI pins them; see
.github/workflows/ci.yml) the status checker is additionally
cross-checked against the real clang AST via compile_commands.json.

Usage:
    tools/upmlint/upmlint.py [--root DIR] [--compdb BUILDDIR]
                             [--checker NAME]... [PATH...]

PATHs (files or directories, default: src bench tests) are linted;
the project model is always built from the whole tree under --root so
cross-file facts (status APIs, guarded fields, unordered members)
stay complete. Exit status 1 when findings are reported.

Suppressing one finding: append `// upmlint: <checker>-ok` (same line
or the line above) with a short reason. Suppressions are themselves
greppable, so the escape hatch stays auditable.
"""

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import checkers as ck  # noqa: E402
from cxx import IDENT, STRING, lex, match_paren  # noqa: E402

CHECKERS = {
    "status": ck.check_status,
    "determinism": ck.check_determinism,
    "hooks": ck.check_hooks,
    "locks": ck.check_locks,
}

SOURCE_EXTS = (".cc", ".hh", ".cpp", ".h")

# Functions whose return is a Status in disguise or a must-check
# success flag, beyond what the scanners below discover syntactically.
EXTRA_STATUS_FUNCTIONS = ()

STATUS_RETURN_TYPES = ("Status", "hipError_t")
TRY_NAME_RE = re.compile(r"^try[A-Z]")


class Project:
    """Cross-file facts shared by every checker."""

    def __init__(self):
        self.status_functions = set(EXTRA_STATUS_FUNCTIONS)
        # path -> set of unordered container identifiers declared there
        self.unordered_by_file = {}
        # path -> {field -> mutex} declared there
        self.guarded_by_file = {}
        # path -> set of project-relative include paths
        self.includes = {}
        self.files = {}  # path -> SourceFile

    def _related(self, path):
        """The file itself, its same-stem sibling, and its includes."""
        rel = [path]
        stem, ext = os.path.splitext(path)
        for other in (stem + ".hh", stem + ".cc", stem + ".h"):
            if other != path and other in self.files:
                rel.append(other)
        for inc in self.includes.get(path, ()):  # direct includes only
            for known in self.files:
                if known.endswith(inc):
                    rel.append(known)
        return rel

    def unordered_names_for(self, path):
        names = set()
        for p in self._related(path):
            names |= self.unordered_by_file.get(p, set())
        return names

    def guarded_fields_for(self, path):
        fields = {}
        for p in self._related(path):
            fields.update(self.guarded_by_file.get(p, {}))
        return fields


def scan_file_facts(project, src):
    toks = src.tokens
    unordered = set()
    guarded = {}
    includes = set()
    for i, t in enumerate(toks):
        if t.text == "#" and i + 2 < len(toks) and \
                toks[i + 1].text == "include" and \
                toks[i + 2].kind == STRING:
            includes.add(toks[i + 2].text.strip('"'))
        if t.kind == IDENT and t.text in ck.UNORDERED_TYPES and \
                i + 1 < len(toks) and toks[i + 1].text == "<":
            j = _skip_template(toks, i + 1)
            if 0 < j < len(toks) and toks[j].kind == IDENT:
                unordered.add(toks[j].text)
        if t.kind == IDENT and t.text == "UPM_GUARDED_BY" and i > 0 and \
                toks[i - 1].kind == IDENT and i + 2 < len(toks) and \
                toks[i + 1].text == "(":
            close = match_paren(toks, i + 1)
            if close == i + 3 and toks[i + 2].kind == IDENT:
                guarded[toks[i - 1].text] = toks[i + 2].text
        # Status-returning function declarations/definitions, try* APIs
        # and [[nodiscard]] functions: `<type> name (`.
        if t.kind == IDENT and i + 1 < len(toks) and \
                toks[i + 1].text == "(":
            name = t.text
            is_try = bool(TRY_NAME_RE.match(name))
            prev = toks[i - 1] if i > 0 else None
            returns_status = (prev is not None and prev.kind == IDENT and
                              prev.text in STATUS_RETURN_TYPES)
            nodiscard = _preceded_by_nodiscard(toks, i)
            if (is_try or returns_status or nodiscard) and \
                    name not in ("if", "while", "for", "switch"):
                # Only declarations introduce API names: require the
                # previous token to be a type-ish ident, `&`, `*` or
                # `]]` -- calls are prefixed by `.`/`->`/`(`/operators.
                if prev is not None and (
                        prev.kind == IDENT or
                        prev.text in ("*", "&", "]")):
                    project.status_functions.add(name)
    project.unordered_by_file[src.path] = unordered
    project.guarded_by_file[src.path] = guarded
    project.includes[src.path] = includes


def _skip_template(toks, lt_idx):
    depth = 0
    j = lt_idx
    while j < len(toks):
        txt = toks[j].text
        if txt == "<":
            depth += 1
        elif txt in (">", ">>"):
            depth -= 2 if txt == ">>" else 1
            if depth <= 0:
                return j + 1
        elif txt in (";", "{"):
            return -1
        j += 1
    return -1


def _preceded_by_nodiscard(toks, name_idx):
    """`[[nodiscard]] <type...> name(` within the last few tokens."""
    j = name_idx - 1
    seen = 0
    while j >= 0 and seen < 8:
        if toks[j].kind == IDENT and toks[j].text == "nodiscard":
            return True
        if toks[j].text in (";", "{", "}", ")"):
            return False
        j -= 1
        seen += 1
    return False


def collect_sources(root, paths):
    files = []
    for p in paths:
        full = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(full):
            files.append(full)
            continue
        for dirpath, dirnames, filenames in os.walk(full):
            dirnames[:] = [d for d in dirnames
                           if d not in ("build", ".git", "fixtures")]
            for fn in sorted(filenames):
                if fn.endswith(SOURCE_EXTS):
                    files.append(os.path.join(dirpath, fn))
    return sorted(set(files))


def build_project(root, model_paths):
    project = Project()
    for path in collect_sources(root, model_paths):
        rel = os.path.relpath(path, root)
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as err:
            print("upmlint: cannot read %s: %s" % (rel, err),
                  file=sys.stderr)
            continue
        src = lex(rel, text)
        project.files[rel] = src
        scan_file_facts(project, src)
    return project


def run(root, lint_paths, model_paths, selected, use_libclang="auto",
        compdb=None):
    project = build_project(root, model_paths)
    wanted = collect_sources(root, lint_paths)
    findings = []
    for path in wanted:
        rel = os.path.relpath(path, root)
        src = project.files.get(rel)
        if src is None:
            with open(path, encoding="utf-8", errors="replace") as f:
                src = lex(rel, f.read())
            scan_file_facts(project, src)
            project.files[rel] = src
        for name in selected:
            findings.extend(CHECKERS[name](src, project))

    if use_libclang != "off":
        findings.extend(_libclang_cross_check(root, wanted, compdb,
                                              use_libclang))

    findings.sort(key=lambda f: (f.path, f.line, f.checker))
    # De-duplicate (token and AST backends can agree on a finding).
    seen = set()
    unique = []
    for f in findings:
        key = (f.path, f.line, f.checker)
        if key not in seen:
            seen.add(key)
            unique.append(f)
    return unique


def _libclang_cross_check(root, files, compdb, mode):
    """AST-backed status check when python3-clang is installed."""
    try:
        import clang_backend
    except ImportError:
        return []
    try:
        return clang_backend.check_status_ast(root, files, compdb)
    except clang_backend.Unavailable as err:
        if mode == "on":
            print("upmlint: libclang requested but unavailable: %s" % err,
                  file=sys.stderr)
            sys.exit(2)
        return []


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="repo-specific static analysis for upmsim")
    ap.add_argument("paths", nargs="*", default=None,
                    help="files/directories to lint (default: src bench "
                         "tests)")
    ap.add_argument("--root", default=None,
                    help="repo root (default: two levels up from this "
                         "script)")
    ap.add_argument("--checker", action="append", choices=sorted(CHECKERS),
                    help="run only this checker (repeatable)")
    ap.add_argument("--compdb", default=None, metavar="BUILDDIR",
                    help="build dir with compile_commands.json for the "
                         "libclang backend")
    ap.add_argument("--use-libclang", choices=("auto", "on", "off"),
                    default="auto")
    ap.add_argument("--model-paths", nargs="*", default=["src"],
                    help="extra trees scanned for cross-file facts")
    args = ap.parse_args(argv)

    root = args.root or os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    lint_paths = args.paths or ["src", "bench", "tests"]
    model_paths = sorted(set(args.model_paths) | set(lint_paths))
    selected = args.checker or sorted(CHECKERS)

    findings = run(root, lint_paths, model_paths, selected,
                   args.use_libclang, args.compdb)
    for f in findings:
        print("%s:%d: [%s] %s" % (f.path, f.line, f.checker, f.message))
    if findings:
        print("upmlint: %d finding(s)" % len(findings), file=sys.stderr)
        return 1
    print("upmlint: clean (%d checker(s))" % len(selected),
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())

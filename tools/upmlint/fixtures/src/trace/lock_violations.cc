// UPMLint fixture: seeded lock-discipline violations.
//
// The lock contract: mutex-holding simulator classes use the
// annotated upm::Mutex family (common/mutex.hh), guarded fields are
// only touched with the mutex visibly held or under UPM_REQUIRES,
// and bare .lock()/.unlock() only appears in annotated functions.

#include <mutex>

#include "common/mutex.hh"
#include "common/thread_annotations.hh"

namespace upm::fixture {

class BadRawMutex
{
  private:
    std::mutex mtx;                    // upmlint-expect: locks
    std::condition_variable cv;        // upmlint-expect: locks
    int value = 0;
};

class BadGuardedAccess
{
  public:
    void
    unguardedWrite()
    {
        counter += 1;                  // upmlint-expect: locks
    }

    void
    guardedWrite()
    {
        MutexLock lock(mtx);
        counter += 1;                  // held: no finding
    }

    void
    annotatedWrite() UPM_REQUIRES(mtx)
    {
        counter += 1;                  // REQUIRES: no finding
    }

    void
    manualLock()
    {
        mtx.lock();                    // upmlint-expect: locks
        counter += 1;                  // lock() counts as acquisition
        mtx.unlock();                  // upmlint-expect: locks
    }

    void
    annotatedManual() UPM_ACQUIRE(mtx)
    {
        mtx.lock();                    // annotated: no finding
    }

  private:
    Mutex mtx;
    int counter UPM_GUARDED_BY(mtx) = 0;
};

} // namespace upm::fixture

// UPMLint fixture: seeded violations of the UPMPolicy contracts.
//
// The fake src/policy/ path puts this file under the simulation-layer
// determinism rules and the hook contract. Three hazard classes from
// the policy engine port:
//
//  1. Unguarded `pol->` dereferences. The policy engine is a
//     null-checked hook exactly like aud/tr/inj/cal/obs: every layer
//     runs policy-free unless an engine is wired, so every
//     dereference must be dominated by a null check or the unwired
//     byte-identity guarantee is one segfault away.
//
//  2. Unordered containers over policy decision state. Victim choice
//     and migration batches must be pure functions of the access
//     stream; iterating an unordered hot-set to pick moves makes the
//     decision sequence depend on hash layout.
//
//  3. Wall-clock reads. Policies rank pages by the LOGICAL tick fed
//     through the engine, never by host time.

#include <chrono>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace upm::fixture {

struct FakePolicyEngine
{
    void advanceTick();
    void noteAccess(unsigned long long space, unsigned long long page);
    unsigned long long tick() const;
};

class PolicyBreaker
{
  public:
    void
    unguardedHookUse(unsigned long long page)
    {
        pol->advanceTick();                           // upmlint-expect: hooks
        pol->noteAccess(0, page);                     // upmlint-expect: hooks
    }

    void
    guardedHookUseIsFine(unsigned long long page)
    {
        if (pol != nullptr)
            pol->advanceTick();
        if (pol) {
            pol->noteAccess(0, page);
            pol->advanceTick();
        }
    }

    unsigned long long
    unorderedVictimScan()
    {
        // The victim-choice hazard: min-scan over an unordered
        // hot-set makes the decision depend on hash layout.
        unsigned long long coldest = ~0ull;
        for (auto &entry : hotPages) {                // upmlint-expect: determinism
            if (entry.second < coldest)
                coldest = entry.second;
        }
        for (auto page : demotionQueue) {             // upmlint-expect: determinism
            if (page < coldest)
                coldest = page;
        }
        return coldest;
    }

    unsigned long long
    orderedVictimScanIsFine() const
    {
        unsigned long long coldest = ~0ull;
        for (auto &entry : stampedPages) {
            if (entry.second < coldest)
                coldest = entry.second;
        }
        return coldest;
    }

    unsigned long long
    wallClockRanking()
    {
        // Policies rank by the engine's logical tick, never host time.
        auto now = std::chrono::steady_clock::now();  // upmlint-expect: determinism
        return static_cast<unsigned long long>(
            now.time_since_epoch().count());
    }

    unsigned long long
    logicalTickRankingIsFine() const
    {
        return pol ? pol->tick() : 0;
    }

  private:
    std::unordered_map<unsigned long long, unsigned long long> hotPages;
    std::unordered_set<unsigned long long> demotionQueue;
    std::map<unsigned long long, unsigned long long> stampedPages;
    FakePolicyEngine *pol = nullptr;
};

} // namespace upm::fixture

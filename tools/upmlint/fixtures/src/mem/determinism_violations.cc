// UPMLint fixture: seeded determinism violations in a sim layer.
//
// The fake src/mem/ path puts this file under the determinism
// contract. Each tagged line must fire exactly once.

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <map>
#include <random>
#include <unordered_map>
#include <vector>

namespace upm::fixture {

struct Page
{
    int frame = 0;
};

class DetBreaker
{
  public:
    void
    wallClockSources()
    {
        auto t0 = std::chrono::steady_clock::now();   // upmlint-expect: determinism
        auto t1 = std::chrono::system_clock::now();   // upmlint-expect: determinism
        std::random_device rd;                        // upmlint-expect: determinism
        int r = rand();                               // upmlint-expect: determinism
        long w = time(nullptr);                       // upmlint-expect: determinism
        (void)t0; (void)t1; (void)rd; (void)r; (void)w;
    }

    void
    unorderedIteration()
    {
        for (auto &entry : busyPages) {               // upmlint-expect: determinism
            entry.second.frame += 1;
        }
        for (auto it = busyPages.begin();             // upmlint-expect: determinism
             it != busyPages.end(); ++it) {
            it->second.frame += 1;
        }
    }

    void
    orderedIterationIsFine()
    {
        for (auto &entry : sortedPages)
            entry.second.frame += 1;
        std::vector<int> keys;
        for (int k : keyList)
            keys.push_back(k);
    }

  private:
    std::unordered_map<int, Page> busyPages;
    std::map<int, Page> sortedPages;
    std::vector<int> keyList;
    std::map<Page *, int> byAddress;                  // upmlint-expect: determinism
};

} // namespace upm::fixture

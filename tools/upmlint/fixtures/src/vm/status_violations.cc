// UPMLint fixture: seeded status-discipline violations.
//
// Each line tagged `upmlint-expect: <checker>` below must produce
// exactly one diagnostic from that checker; upmlint_test.py fails if
// any tagged line is missed or any untagged line fires. The fixture
// lives under a fake src/vm/ so the path-scoped checkers treat it as
// simulator code. It is never compiled.

#include "common/status.hh"

namespace upm::fixture {

struct FakeResult
{
    Status status = Status::Success;
};

class FakeSpace
{
  public:
    Status munmap(int base);
    FakeResult tryPopulateRange(int base, int size);
    hipError_t hipFree(int ptr);
    bool tryLock();
    void touch();

    void
    violations()
    {
        munmap(1);              // upmlint-expect: status
        tryPopulateRange(0, 4); // upmlint-expect: status
        hipFree(9);             // upmlint-expect: status
        this->munmap(2);        // upmlint-expect: status
    }

    void
    cleanUses()
    {
        Status s = munmap(1);   // consumed: no finding
        if (s != Status::Success)
            touch();
        (void)hipFree(9);       // explicit discard: no finding
        FakeResult r = tryPopulateRange(0, 4);
        if (r.status != Status::Success)
            touch();
        touch();                // void call: no finding
        munmap(3);              // upmlint: status-ok (teardown best-effort)
    }

    Status
    forwarded()
    {
        return munmap(4);       // returned: no finding
    }
};

} // namespace upm::fixture

// UPMLint fixture: seeded violations of the event-calendar contracts.
//
// The fake src/sched/ path puts this file under the determinism and
// hook contracts. Two hazard classes from the event-core port:
//
//  1. SimTime-keyed unordered containers. The pre-port histogram
//     engine kept per-agent ready times in an unordered_map and
//     scanned it for the minimum -- iteration order (and therefore
//     FP-tie winners) depended on the hash layout. Calendars must
//     key time in ordered structures.
//
//  2. Unguarded `cal->` dereferences. The calendar is a null-checked
//     hook exactly like tr/aud/inj: engines run calendar-free unless
//     one is wired, so every dereference must be dominated by a null
//     check.

#include <map>
#include <unordered_map>
#include <vector>

namespace upm::fixture {

using SimTime = double;

struct Agent
{
    SimTime readyAt = 0.0;
};

struct FakeCalendar
{
    void schedule(unsigned engine, SimTime when);
    void runUntil(SimTime when);
};

class CalendarBreaker
{
  public:
    void
    simTimeKeyedScan()
    {
        // The histogram hazard: min-scan over an unordered SimTime map.
        for (auto &entry : readyTimes) {              // upmlint-expect: determinism
            if (entry.second.readyAt < 1.0)
                entry.second.readyAt += 1.0;
        }
        for (auto it = byDeadline.begin();            // upmlint-expect: determinism
             it != byDeadline.end(); ++it) {
            it->second += 1;
        }
    }

    void
    orderedCalendarIsFine()
    {
        for (auto &entry : sortedDeadlines)
            entry.second += 1;
    }

    void
    unguardedHookUse(SimTime now)
    {
        cal->schedule(0, now);                        // upmlint-expect: hooks
        cal->runUntil(now);                           // upmlint-expect: hooks
    }

    void
    guardedHookUseIsFine(SimTime now)
    {
        if (cal != nullptr)
            cal->schedule(0, now);
        if (cal) {
            cal->schedule(1, now);
            cal->runUntil(now);
        }
    }

  private:
    std::unordered_map<unsigned, Agent> readyTimes;
    std::unordered_map<double, int> byDeadline;
    std::unordered_map<Agent *, SimTime> byAgent;     // upmlint-expect: determinism
    std::map<SimTime, int> sortedDeadlines;
    FakeCalendar *cal = nullptr;
};

} // namespace upm::fixture

// UPMLint fixture: seeded violations of the serving-node contracts.
//
// The fake src/serve/ path puts this file under the determinism and
// hook contracts. Two hazard classes from the UPMServe port:
//
//  1. Wall-clock arrivals. An open-loop arrival process must derive
//     its gaps from the seeded common/rng streams; sampling
//     steady_clock (or rand()) makes the request history -- and every
//     latency percentile downstream -- non-reproducible.
//
//  2. Unguarded `obs->` dereferences. The ServeObserver is a
//     null-checked hook exactly like tr/aud/inj/cal: the node runs
//     observer-free unless one is attached, so every notification
//     site must be dominated by a null check.

#include <chrono>
#include <unordered_map>

namespace upm::fixture {

using SimTime = double;

struct FakeObserver
{
    void onAdmit(unsigned tenant, bool queued);
    void onShed(unsigned tenant);
    void onDegrade(unsigned tier);
};

struct TenantState
{
    SimTime readyAt = 0.0;
};

class ServingBreaker
{
  public:
    SimTime
    wallClockArrival()
    {
        // The open-loop hazard: gap timing from the host clock.
        auto t = std::chrono::steady_clock::now();    // upmlint-expect: determinism
        (void)t;
        return 1.0 + rand() % 7;                      // upmlint-expect: determinism
    }

    void
    unguardedObserverUse(unsigned tenant)
    {
        obs->onAdmit(tenant, false);                  // upmlint-expect: hooks
        if (obs->onShed(tenant), tenant > 0)          // upmlint-expect: hooks
            obs->onDegrade(1);                        // upmlint-expect: hooks
    }

    void
    guardedObserverUseIsFine(unsigned tenant)
    {
        if (obs)
            obs->onAdmit(tenant, true);
        if (obs != nullptr) {
            obs->onShed(tenant);
            obs->onDegrade(2);
        }
        if (!obs)
            return;
        obs->onDegrade(3);
    }

    void
    unorderedTenantScan()
    {
        // Hash order must not pick the eviction victim.
        for (auto &entry : tenantsById) {             // upmlint-expect: determinism
            entry.second.readyAt += 1.0;
        }
    }

  private:
    std::unordered_map<unsigned, TenantState> tenantsById;
    FakeObserver *obs = nullptr;
};

} // namespace upm::fixture

// UPMLint fixture: seeded hook-discipline violations.
//
// `aud`, `tr` and `inj` are the simulator's zero-overhead-when-off
// hook pointers: every dereference must be dominated by a null check.
// Tagged lines fire; the guarded forms below them must not.

namespace upm::fixture {

struct FakeAuditor
{
    void noteAlloc(int a, int b);
    void noteFree(int a);
};

struct FakeTracer
{
    void emit(int kind);
    int emitted();
};

struct FakeInjector
{
    bool shouldFail(int site);
};

class Hooked
{
  public:
    void
    unguarded()
    {
        aud->noteAlloc(1, 2);            // upmlint-expect: hooks
        tr->emit(3);                     // upmlint-expect: hooks
        if (inj->shouldFail(0))          // upmlint-expect: hooks
            aud->noteFree(1);            // upmlint-expect: hooks
    }

    void
    wrongGuard()
    {
        if (aud) {
            aud->noteAlloc(1, 2);        // guarded: no finding
        } else {
            tr->emit(1);                 // upmlint-expect: hooks
        }
        if (!tr)
            tr->emit(2);                 // upmlint-expect: hooks
    }

    void
    guardedForms()
    {
        if (aud)
            aud->noteAlloc(1, 2);
        if (aud != nullptr)
            aud->noteFree(3);
        if (tr) {
            tr->emit(1);
            int n = tr->emitted();
            (void)n;
        }
        if (inj && inj->shouldFail(4))
            return;
        if (!aud)
            return;
        aud->noteFree(5);                // early-return guard above
    }

    void
    guardedEarlyReturnForms(bool quiet)
    {
        if (quiet || tr == nullptr)
            return;
        tr->emit(6);                     // disjunctive early return
        if (aud == nullptr) {
            tr->emit(7);
            return;
        }
        aud->noteFree(8);                // block-form early return
        if (!inj && quiet)
            inj->shouldFail(9);          // upmlint-expect: hooks
    }

    void
    guardedLoops()
    {
        if (tr) {
            for (int i = 0; i < 4; ++i)
                tr->emit(i);
        }
    }

  private:
    FakeAuditor *aud = nullptr;
    FakeTracer *tr = nullptr;
    FakeInjector *inj = nullptr;
};

} // namespace upm::fixture

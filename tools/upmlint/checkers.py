"""The four UPMLint checkers.

Each checker is a function `check_<name>(src, project)` yielding
`Finding` tuples. The project model (built by the driver from every
file in the tree) carries the cross-file knowledge the checkers need:
which functions return a must-check status, which identifiers are
unordered containers, and which fields are lock-guarded.

Contracts enforced (see DESIGN.md section 12):

* status-discipline -- a call to a `Status`/`hipError_t`-returning
  function, a `try*` API, or any `[[nodiscard]]` function must not be
  a bare expression statement. Casting to `(void)` is an explicit,
  reviewable discard and is allowed.
* determinism -- simulation layers must not read wall clocks or
  non-seeded randomness, must not iterate unordered containers (hash
  order is not part of simulated state), and must not key ordered
  containers by pointer (iteration order would depend on allocation
  addresses).
* hook-discipline -- every dereference of a zero-overhead-off hook
  pointer (`aud`, `tr`, `inj`) must be dominated by a null check, so
  an unwired hook costs one branch and no call.
* lock-discipline -- mutex-holding classes use the annotated
  `upm::Mutex`/`upm::MutexLock` types from common/mutex.hh; fields
  annotated `UPM_GUARDED_BY(m)` are only touched in functions that
  visibly acquire `m` or are annotated `UPM_REQUIRES(m)`; bare
  `.lock()`/`.unlock()` calls only appear in annotated functions.
"""

from collections import namedtuple

from cxx import (IDENT, PUNCT, STRING, enclosing_blocks, match_paren,
                 statement_start)

Finding = namedtuple("Finding", ["path", "line", "checker", "message"])

# Layers bound by the determinism contract. bench/, tests/ and
# examples/ measure wall time and drive the simulator from outside, so
# they are exempt; common/rng is the one sanctioned randomness source.
SIM_LAYERS = ("src/vm/", "src/mem/", "src/cache/", "src/tlb/",
              "src/uvm/", "src/core/", "src/hip/", "src/trace/",
              "src/sched/", "src/serve/", "src/policy/")

HOOK_POINTERS = ("aud", "tr", "inj", "cal", "obs", "pol")

UNORDERED_TYPES = ("unordered_map", "unordered_set", "unordered_multimap",
                   "unordered_multiset")

WALL_CLOCK_IDENTS = ("system_clock", "steady_clock",
                     "high_resolution_clock", "random_device",
                     "gettimeofday", "clock_gettime", "srand", "drand48")

LOCK_ANNOTATIONS = ("UPM_REQUIRES", "UPM_ACQUIRE", "UPM_RELEASE",
                    "UPM_ACQUIRE_SHARED", "UPM_RELEASE_SHARED",
                    "UPM_NO_THREAD_SAFETY_ANALYSIS")

RAII_GUARDS = ("MutexLock", "lock_guard", "unique_lock", "scoped_lock",
               "shared_lock")


def _sim_layer(path):
    p = path.replace("\\", "/")
    return any(("/" + layer) in ("/" + p) or p.startswith(layer)
               for layer in SIM_LAYERS)


# ---------------------------------------------------------------- status


def check_status(src, project):
    """Flag discarded calls to status-returning / nodiscard functions."""
    toks = src.tokens
    for i, t in enumerate(toks):
        if t.kind != IDENT or t.text not in project.status_functions:
            continue
        if i + 1 >= len(toks) or toks[i + 1].text != "(":
            continue
        close = match_paren(toks, i + 1)
        if close < 0 or close + 1 >= len(toks):
            continue
        if toks[close + 1].text != ";":
            continue  # result consumed (assigned, returned, compared...)
        s = statement_start(toks, i)
        if not _is_bare_call_prefix(toks, s, i):
            continue
        if src.suppressed("status", t.line):
            continue
        yield Finding(src.path, t.line, "status",
                      "return value of '%s' is ignored; assign it, check "
                      "it, or cast to (void) with a reason" % t.text)


def _is_bare_call_prefix(toks, start, name_idx):
    """True when toks[start:name_idx] is just an object path.

    `rt.hipFree(p);` or `as->munmap(b);` or `upm::foo(x);` prefixes
    qualify; `Status s = f(x);`, `return f(x);`, `(void)f(x);` and
    declarations (`Status munmap(...)`) do not.
    """
    path_punct = (".", "->", "::", "*", ")")
    prev_ident = False
    i = start
    while i < name_idx:
        t = toks[i]
        if t.kind == IDENT:
            if t.text in ("return", "co_return", "case", "goto", "void",
                          "if", "while", "for", "switch", "delete", "new",
                          "throw", "else", "do"):
                return False
            if prev_ident:
                return False  # two adjacent idents: a declaration
            prev_ident = True
        elif t.text in path_punct:
            prev_ident = False
        else:
            return False  # operator/assignment: result is consumed
        i += 1
    # A declaration has an identifier (the return type) directly before
    # the function name with no member/scope connector.
    if name_idx > start and toks[name_idx - 1].kind == IDENT:
        return False
    return True


# ------------------------------------------------------------ determinism


def check_determinism(src, project):
    if not _sim_layer(src.path):
        return
    toks = src.tokens
    unordered = project.unordered_names_for(src.path)
    for i, t in enumerate(toks):
        if t.kind != IDENT:
            continue
        nxt = toks[i + 1].text if i + 1 < len(toks) else ""
        prev = toks[i - 1].text if i > 0 else ""
        if t.text in WALL_CLOCK_IDENTS:
            if not src.suppressed("determinism", t.line):
                yield Finding(src.path, t.line, "determinism",
                              "'%s' is a nondeterministic source; derive "
                              "randomness from common/rng seeds and time "
                              "from the simulated clock" % t.text)
            continue
        if t.text == "rand" and nxt == "(" and prev not in (".", "->"):
            if not src.suppressed("determinism", t.line):
                yield Finding(src.path, t.line, "determinism",
                              "'rand()' is unseeded global randomness; use "
                              "common/rng")
            continue
        if t.text == "time" and nxt == "(" and _is_wall_time_call(toks, i):
            if not src.suppressed("determinism", t.line):
                yield Finding(src.path, t.line, "determinism",
                              "'time()' reads the wall clock; simulation "
                              "layers must use simulated time")
            continue
        if t.text in UNORDERED_TYPES and nxt == "<" and \
                _pointer_key(toks, i + 1):
            if not src.suppressed("determinism", t.line):
                yield Finding(src.path, t.line, "determinism",
                              "pointer-keyed container: hashes/ordering "
                              "depend on allocation addresses; key by a "
                              "stable id instead")
            continue
        if t.text in ("map", "set", "multimap", "multiset") and \
                nxt == "<" and prev == "::" and _pointer_key(toks, i + 1):
            if not src.suppressed("determinism", t.line):
                yield Finding(src.path, t.line, "determinism",
                              "pointer-keyed ordered container: iteration "
                              "order depends on allocation addresses; key "
                              "by a stable id instead")
            continue
        if t.text == "for" and nxt == "(":
            target = _range_for_target(toks, i)
            if target and target.text in unordered and \
                    not src.suppressed("determinism", target.line):
                yield Finding(src.path, target.line, "determinism",
                              "range-for over unordered container '%s': "
                              "hash order leaks into simulated state; "
                              "iterate a sorted copy of the keys" %
                              target.text)
            continue
        if t.text in ("begin", "cbegin") and nxt == "(" and \
                prev in (".", "->") and i >= 2 and \
                toks[i - 2].kind == IDENT and toks[i - 2].text in unordered:
            if not src.suppressed("determinism", t.line):
                yield Finding(src.path, t.line, "determinism",
                              "iterator walk over unordered container "
                              "'%s': hash order leaks into simulated "
                              "state; iterate a sorted copy of the keys" %
                              toks[i - 2].text)


def _is_wall_time_call(toks, i):
    """`time(nullptr)` / `time(NULL)` / `time(0)` / `std::time(...)`."""
    if i >= 2 and toks[i - 1].text == "::" and toks[i - 2].text == "std":
        return True
    close = match_paren(toks, i + 1)
    if close == i + 3 and toks[i + 2].text in ("nullptr", "NULL", "0"):
        return True
    return False


def _pointer_key(toks, lt_idx):
    """True when the first template argument ends in `*`."""
    depth = 0
    j = lt_idx
    while j < len(toks):
        txt = toks[j].text
        if txt == "<":
            depth += 1
        elif txt in (">", ">>"):
            depth -= 2 if txt == ">>" else 1
            if depth <= 0:
                return False
        elif txt == "," and depth == 1:
            return toks[j - 1].text == "*"
        elif txt in ("(", ";", "{"):
            return False
        j += 1
    return False


def _range_for_target(toks, for_idx):
    """Terminal identifier of the range expression, or None."""
    close = match_paren(toks, for_idx + 1)
    if close < 0:
        return None
    depth = 0
    colon = -1
    for j in range(for_idx + 1, close):
        txt = toks[j].text
        if txt in ("(", "[", "{"):
            depth += 1
        elif txt in (")", "]", "}"):
            depth -= 1
        elif txt == ":" and depth == 1 and toks[j].kind == PUNCT and \
                toks[j - 1].text != ":" and toks[j + 1].text != ":":
            colon = j
            break
    if colon < 0:
        return None
    last_ident = None
    for j in range(colon + 1, close):
        if toks[j].kind == IDENT:
            last_ident = toks[j]
        elif toks[j].text == "(":
            # A call in the range expression: its name is not the
            # container (e.g. `keys(map)`), give up on the simple rule
            # unless the call is `.items()`-style, which C++ lacks.
            return None
    return last_ident


# ---------------------------------------------------------------- hooks


def check_hooks(src, project):
    toks = src.tokens
    for i, t in enumerate(toks):
        if t.kind != IDENT or t.text not in HOOK_POINTERS:
            continue
        if i + 1 >= len(toks) or toks[i + 1].text != "->":
            continue
        if i > 0 and toks[i - 1].text in (".", "->", "::"):
            continue  # member of some other object
        if _hook_guarded(toks, i, t.text):
            continue
        if src.suppressed("hooks", t.line):
            continue
        yield Finding(src.path, t.line, "hooks",
                      "dereference of hook pointer '%s' is not dominated "
                      "by a null check; wrap it in `if (%s)` to keep the "
                      "zero-overhead-when-off contract" % (t.text, t.text))


def _cond_guards(cond, hook):
    """Does a condition token list positively test `hook`?"""
    for k, c in enumerate(cond):
        if c.kind != IDENT or c.text != hook:
            continue
        if k > 0 and cond[k - 1].text in ("!", ".", "->", "::"):
            continue
        if k + 1 < len(cond) and cond[k + 1].text == "==" and \
                k + 2 < len(cond) and cond[k + 2].text in ("nullptr", "NULL",
                                                           "0"):
            continue
        if k + 1 < len(cond) and cond[k + 1].text in (".", "->"):
            continue  # hook->x inside the condition is not a test
        return True
    return False


def _hook_guarded(toks, idx, hook):
    # Same-statement guard: `tr && tr->...`, `tr ? tr->... : ...`, and
    # the single-statement `if (tr) tr->...;` form.
    s = statement_start(toks, idx)
    j = s
    while j < idx:
        t = toks[j]
        if t.kind == IDENT and t.text == "if" and j + 1 < idx and \
                toks[j + 1].text == "(":
            close = match_paren(toks, j + 1)
            if 0 < close < idx and _cond_guards(toks[j + 1 : close + 1],
                                                hook):
                return True
            # When idx sits inside this condition, keep scanning the
            # condition tokens themselves (covers `inj && inj->...`).
            j = close + 1 if 0 < close < idx else j + 1
            continue
        if t.kind == IDENT and t.text == hook and j + 1 < idx and \
                toks[j + 1].text in ("&&", "?") and \
                (j == 0 or toks[j - 1].text not in ("!", ".", "->", "::")):
            return True
        if t.kind == IDENT and t.text == hook and j + 2 < idx and \
                toks[j + 1].text == "!=" and \
                toks[j + 2].text in ("nullptr", "NULL") and \
                j + 3 < idx and toks[j + 3].text == "&&":
            return True
        j += 1

    # Enclosing `if`/`while` blocks whose condition tests the hook.
    blocks = enclosing_blocks(toks, idx)
    for blk in blocks:
        cond = blk.control
        if cond and cond[0].kind == IDENT and cond[0].text in ("if",
                                                              "while") and \
                _cond_guards(cond[1:], hook):
            return True

    # Early-return guard earlier in an enclosing block:
    # `if (!hook) return;`, `if (hook == nullptr) { ...; return x; }`,
    # and the disjunctive form `if (other || !hook) return;` (any true
    # disjunct returns, so past the `if` the hook is non-null).
    for blk in blocks:
        j = blk.open_idx
        while j < idx:
            t = toks[j]
            if t.kind == IDENT and t.text == "if" and j + 1 < idx and \
                    toks[j + 1].text == "(":
                close = match_paren(toks, j + 1)
                if close < 0 or close >= idx:
                    break
                cond = toks[j + 2 : close]
                if _cond_rejects(cond, hook) and \
                        _guard_diverts(toks, close + 1, idx):
                    return True
                j = close + 1
                continue
            j += 1
    return False


def _cond_rejects(cond, hook):
    """Condition is false whenever `hook` is non-null: a negative test
    of the hook combined only by `||` at the top level."""
    negative_at = -1
    depth = 0
    for k, c in enumerate(cond):
        if c.text in ("(", "[", "{"):
            depth += 1
        elif c.text in (")", "]", "}"):
            depth -= 1
        elif depth == 0 and c.text == "&&":
            return False  # a conjunction may pass with hook == nullptr
        if c.kind != IDENT or c.text != hook or depth != 0:
            continue
        if k > 0 and cond[k - 1].text == "!":
            negative_at = k
        elif k + 2 < len(cond) and cond[k + 1].text == "==" and \
                cond[k + 2].text in ("nullptr", "NULL"):
            negative_at = k
        elif k > 1 and cond[k - 1].text == "==" and \
                cond[k - 2].text in ("nullptr", "NULL"):
            negative_at = k
    return negative_at >= 0


def _guard_diverts(toks, start, idx):
    """After a negative guard, control must leave the enclosing scope:
    a direct `return`/`continue`/`break` statement (not one nested in
    a further conditional) or a [[noreturn]] fatal()/panic() call."""
    diverting = ("return", "continue", "break", "fatal", "panic")
    k = start
    if k < idx and toks[k].kind == IDENT and toks[k].text in diverting:
        return True
    if k >= idx or toks[k].text != "{":
        return False
    close = match_paren(toks, k)
    limit = close if 0 < close < idx else idx
    for j in range(k + 1, limit):
        t = toks[j]
        if t.kind == IDENT and t.text in diverting and \
                toks[j - 1].text in ("{", "}", ";"):
            return True
    return False


# ---------------------------------------------------------------- locks


def check_locks(src, project):
    p = src.path.replace("\\", "/")
    if "common/mutex.hh" in p or "common/thread_annotations.hh" in p:
        return
    toks = src.tokens
    in_src = p.startswith("src/") or "/src/" in p

    for i, t in enumerate(toks):
        # L1: raw standard mutex members in simulator classes.
        if in_src and t.kind == IDENT and \
                t.text in ("mutex", "shared_mutex", "recursive_mutex",
                           "condition_variable", "condition_variable_any") \
                and i >= 2 and toks[i - 1].text == "::" and \
                toks[i - 2].text == "std" and i + 1 < len(toks) and \
                toks[i + 1].kind == IDENT and t.depth >= 1 and \
                not src.suppressed("locks", t.line):
            repl = "upm::CondVar" if "condition" in t.text else "upm::Mutex"
            yield Finding(src.path, t.line, "locks",
                          "raw std::%s member: use %s from "
                          "common/mutex.hh so clang -Wthread-safety can "
                          "see it" % (t.text, repl))

        # L3: bare lock()/unlock() outside annotated functions.
        if t.kind == IDENT and t.text in ("lock", "unlock", "try_lock") and \
                i + 1 < len(toks) and toks[i + 1].text == "(" and \
                i > 0 and toks[i - 1].text in (".", "->") and \
                not _mutex_like_receiver_exempt(toks, i) and \
                not _enclosing_function_annotated(toks, i) and \
                not src.suppressed("locks", t.line):
            yield Finding(src.path, t.line, "locks",
                          "bare .%s() call: hold locks via RAII "
                          "(upm::MutexLock) or annotate the function with "
                          "UPM_ACQUIRE/UPM_RELEASE/UPM_REQUIRES" % t.text)

    # L2: guarded fields touched without a visible acquisition.
    guarded = project.guarded_fields_for(src.path)
    if not guarded:
        return
    for i, t in enumerate(toks):
        if t.kind != IDENT or t.text not in guarded:
            continue
        nxt = toks[i + 1].text if i + 1 < len(toks) else ""
        if nxt == "UPM_GUARDED_BY" or (nxt == ";" and t.depth >= 1 and
                                       i > 0 and toks[i - 1].kind == IDENT):
            continue  # the declaration itself
        prev = toks[i - 1].text if i > 0 else ""
        if prev in (".", "::") or (prev == "->" and
                                   (i < 2 or toks[i - 2].text != "this")):
            continue  # member of some other object
        mutex = guarded[t.text]
        fn = _enclosing_function_body(toks, i)
        if fn is None:
            continue  # class scope: initializers, declarations
        if _function_holds(toks, fn, i, mutex):
            continue
        if src.suppressed("locks", t.line):
            continue
        yield Finding(src.path, t.line, "locks",
                      "field '%s' is UPM_GUARDED_BY(%s) but this function "
                      "neither acquires '%s' nor is annotated "
                      "UPM_REQUIRES(%s)" % (t.text, mutex, mutex, mutex))


def _mutex_like_receiver_exempt(toks, i):
    """`lk.unlock()` on a std::unique_lock-style guard object is RAII
    at heart; L3 targets direct mutex operations. We exempt receivers
    that were declared in the same function as unique_lock/MutexLock
    variables is overkill at token level, so exempt nothing -- except
    calls through `->` on iterators (`it->second.lock()` patterns do
    not appear in this tree)."""
    return False


def _function_signature(toks, body_open):
    """Tokens of the signature preceding a function body `{`."""
    j = body_open - 1
    # Walk back over init-lists / qualifiers until the parameter `)`.
    depth = 0
    while j >= 0:
        txt = toks[j].text
        if txt in (")", "]", ">"):
            depth += 1
        elif txt in ("(", "[", "<"):
            depth -= 1
        elif depth == 0 and txt in (";", "{", "}"):
            break
        j -= 1
    return toks[j + 1 : body_open]


def _looks_like_function_body(toks, blk):
    sig = _function_signature(toks, blk.open_idx)
    has_parens = any(t.text == "(" for t in sig)
    if not has_parens:
        return False
    # Class/struct/enum/namespace heads never contain a `)` directly
    # before the brace chain, but a base-class list can contain parens
    # is not valid C++; a control clause was already captured.
    if blk.control:
        return False
    for t in sig:
        if t.kind == IDENT and t.text in ("class", "struct", "enum",
                                          "namespace", "union"):
            return False
    return True


def _enclosing_function_body(toks, idx):
    blocks = enclosing_blocks(toks, idx)
    for blk in reversed(blocks):  # outermost first
        if _looks_like_function_body(toks, blk):
            return blk
    return None


def _enclosing_function_annotated(toks, idx):
    blk = _enclosing_function_body(toks, idx)
    if blk is None:
        return False
    sig = _function_signature(toks, blk.open_idx)
    return any(t.kind == IDENT and t.text in LOCK_ANNOTATIONS for t in sig)


def _function_holds(toks, body, idx, mutex):
    """Does the function visibly hold `mutex` before token idx?"""
    sig = _function_signature(toks, body.open_idx)
    for k, t in enumerate(sig):
        if t.kind == IDENT and t.text in ("UPM_REQUIRES", "UPM_ACQUIRE",
                                          "UPM_RELEASE"):
            return True
        if t.kind == IDENT and t.text == "UPM_NO_THREAD_SAFETY_ANALYSIS":
            return True
    for j in range(body.open_idx, idx):
        t = toks[j]
        if t.kind != IDENT:
            continue
        if t.text in RAII_GUARDS:
            return True
        if t.text == mutex and j + 2 < len(toks) and \
                toks[j + 1].text == "." and \
                toks[j + 2].text in ("lock", "try_lock"):
            return True
    return False
